"""The client side: ``repro.connect("xmark://host:port/doc")``.

:class:`RemoteDatabase` duck-types :class:`repro.db.Database` closely
enough that the embedded API's own :class:`~repro.db.session.Session`,
:class:`~repro.db.session.PreparedQuery`,
:class:`~repro.db.session.Transaction`, and
:class:`~repro.db.cursor.Cursor` classes are reused verbatim — code
written against an in-process connection works unchanged over the
network.  Rows arrive as their rowtext strings, and a string item
rendered through :func:`~repro.xquery.evaluator.item_text` is the string
itself, so ``cursor.serialize()`` on a remote cursor is byte-identical
to the in-process serialization of the same query.

One :class:`WireClient` is one socket with strictly ordered
request/reply pairs, serialized by a lock — safe to share across
threads for queries, though a wire transaction (begin .. commit) is
connection-scoped state and should not interleave with another thread's
transaction on the same client.
"""

from __future__ import annotations

import socket
import threading

from repro.benchmark.queries import query_text as benchmark_query_text
from repro.db.cursor import Cursor
from repro.db.session import Session
from repro.errors import (
    ClosedSessionError, ProtocolError, UnknownSystemError, XMarkError,
)
from repro.obs.explain import Explain
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Span, TraceLogWriter, Tracer
from repro.server import protocol
from repro.update.ops import UpdateOp


class WireClient:
    """One protocol connection: socket, handshake, ordered requests."""

    def __init__(self, host: str, port: int, *, document: str = "",
                 tenant: str | None = None, timeout: float | None = 30.0,
                 max_frame: int = protocol.MAX_FRAME) -> None:
        self.host = host
        self.port = port
        self._lock = threading.Lock()
        self._max_frame = max_frame
        self._closed = False
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.settimeout(timeout)
        try:
            self.welcome = self.request({
                "kind": "hello",
                "protocol": protocol.PROTOCOL_VERSION,
                "document": document,
                "tenant": tenant,
            })
        except BaseException:
            self._sock.close()
            self._closed = True
            raise

    def request(self, payload: dict) -> dict:
        """One request, one reply; typed raise on an ``error`` reply."""
        with self._lock:
            if self._closed:
                raise ClosedSessionError("wire client is closed")
            self._sock.sendall(protocol.encode_frame(payload))
            reply = protocol.recv_frame(self._sock, self._max_frame)
            if reply is None:
                self._closed = True
        if reply is None:
            raise ProtocolError("server closed the connection",
                                code="truncated")
        if reply.get("kind") == "error":
            protocol.raise_wire_error(reply)
        return reply

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._sock.sendall(protocol.encode_frame({"kind": "bye"}))
                protocol.recv_frame(self._sock, self._max_frame)
            except OSError:
                pass
            finally:
                self._sock.close()


class RemotePrepared:
    """A server-held prepared query: the id plus what the server pinned."""

    __slots__ = ("query_id", "system", "query_text", "warnings")

    def __init__(self, query_id: str, system: str, query_text: str,
                 warnings: list[str]) -> None:
        self.query_id = query_id
        self.system = system
        self.query_text = query_text
        self.warnings = warnings


class RemoteDatabase:
    """A served document, driven through the embedded API's own classes.

    ``service`` is ``None`` and ``compile()`` goes over the wire, so
    :class:`~repro.db.session.PreparedQuery` prepares server-side ids;
    ``execute()`` opens a server cursor and returns a real
    :class:`~repro.db.cursor.Cursor` whose iterator pages rows lazily
    with ``fetch`` requests.  A local :class:`MetricsRegistry` keeps the
    client-side ``db.*`` counters the in-process facade would keep.
    """

    #: Session/PreparedQuery test this to decide who compiles; the wire
    #: server is never a "service" connection from the client's view.
    service = None

    def __init__(self, client: WireClient, *, page_size: int | None = None,
                 url: str | None = None, tracing: bool = False,
                 trace_log=None) -> None:
        self._client = client
        welcome = client.welcome
        self.document = url or welcome.get("document", "")
        self.tenant = welcome.get("tenant")
        self.shard_system = welcome.get("shard_system")
        self.page_size = page_size or welcome.get("page_size", 64)
        self._serving = tuple(welcome.get("systems", ()))
        self._default = welcome.get("default_system")
        self._registry = MetricsRegistry()
        self._trace_writer = (TraceLogWriter(trace_log)
                              if tracing and trace_log else None)
        self.tracer = (Tracer(on_root=self._trace_writer) if tracing
                       else NULL_TRACER)
        self._closed = False

    # -- introspection --------------------------------------------------------------

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry

    @property
    def systems(self) -> tuple[str, ...]:
        return self._serving

    def default_system(self) -> str:
        return self._default or (self._serving[0] if self._serving else "D")

    def resolve_system(self, system: str | None) -> str:
        if system is None:
            return self.default_system()
        if system not in self._serving:
            raise UnknownSystemError(system, self._serving)
        return system

    def query_text(self, query: int | str) -> str:
        if isinstance(query, int):
            return benchmark_query_text(query)
        return query

    def document_digest(self, system: str | None = None) -> str | None:
        self._require_open()
        reply = self._client.request(
            {"kind": "digest", "system": self.resolve_system(system)})
        return reply["digest"]

    def stats(self) -> dict:
        """The server's live stats (connections, tenants, metrics)."""
        self._require_open()
        return self._client.request({"kind": "stats"})

    # -- lifecycle ------------------------------------------------------------------

    def _require_open(self) -> None:
        if self._closed:
            raise ClosedSessionError("database connection is closed")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._client.close()
        if self._trace_writer is not None:
            self._trace_writer.close()

    def __enter__(self) -> "RemoteDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def session(self, tenant: str | None = None) -> Session:
        """A session over the wire — the embedded API's own class."""
        self._require_open()
        return Session(self, tenant)

    # -- execution ------------------------------------------------------------------

    def compile(self, system: str, text: str) -> RemotePrepared:
        """Prepare server-side; the returned handle rides in ``compiled``."""
        self._require_open()
        reply = self._client.request(
            {"kind": "prepare", "system": system, "query": text})
        return RemotePrepared(reply["query_id"], reply["system"],
                              reply["query"], list(reply.get("warnings", ())))

    def explain(self, query: int | str, *, system: str | None = None) -> Explain:
        self._require_open()
        reply = self._client.request({
            "kind": "explain",
            "system": self.resolve_system(system),
            "query": self.query_text(query),
        })
        return Explain(reply["explain"])

    def execute(self, system: str | None, query: int | str, *,
                stream: bool = True, compiled=None,
                tenant: str | None = None) -> Cursor:
        """Open a server cursor and wrap it in a paging local cursor.

        ``stream`` is accepted for API parity; rows always arrive in
        pages, which *is* streaming from the client's point of view.
        """
        self._require_open()
        if isinstance(compiled, RemotePrepared):
            request = {"kind": "execute", "query_id": compiled.query_id}
            name = compiled.system
            text = compiled.query_text
        else:
            name = self.resolve_system(system)
            text = self.query_text(query)
            request = {"kind": "execute", "system": name, "query": text}
        request["fetch"] = self.page_size
        labels = {"system": name}
        if tenant is not None:
            labels["tenant"] = tenant
        self._registry.counter("db.queries_total", **labels).inc()
        root = on_span = None
        if self.tracer.enabled:
            # Start the distributed trace and ship its context with the
            # request; replies completing the cursor bring the server's
            # span subtree back, and grafting it under this root is what
            # makes cursor.profile() one joined client+server tree.
            trace_id = self.tracer.new_trace_id()
            root = self.tracer.begin("query", system=name, source="wire",
                                     query=query, trace_id=trace_id)
            request["trace"] = {"trace_id": trace_id,
                                "parent": f"{trace_id}/0", "sampled": True}

            def on_span(data, parent=root):
                parent.children.append(Span.from_dict(data))
        try:
            reply = self._client.request(request)
        except BaseException as exc:
            if root is not None:
                root.set(error=type(exc).__name__).finish()
            raise
        if on_span is not None and reply.get("span"):
            on_span(reply["span"])
        stats = reply.get("stats", {})
        rows = _PageIterator(self, reply["cursor_id"],
                             reply.get("rows", ()),
                             reply.get("done", False),
                             on_span=on_span)
        return Cursor(
            rows, None,
            system=name, query_text=text,
            streaming=True, source="wire",
            compile_seconds=stats.get("compile_seconds", 0.0),
            plan_cache_hit=bool(stats.get("plan_cache_hit")),
            result_cache_hit=bool(stats.get("result_cache_hit")),
            span=root,
        )

    # -- the write path -------------------------------------------------------------

    def apply_transaction(self, ops: list[UpdateOp], *,
                          maintenance: str | None = None) -> dict:
        """Ship a buffered batch: ``begin``, one ``txn_op`` each, ``commit``.

        The server applies the batch exactly as the embedded facade
        would — one unit, one digest advance — and the commit summary
        comes back verbatim (a failed commit raises the typed
        :class:`~repro.errors.TransactionError` with its ``applied``
        count).
        """
        self._require_open()
        self._client.request({"kind": "begin"})
        try:
            for op in ops:
                self._client.request(
                    {"kind": "txn_op", "op": protocol.encode_op(op)})
        except BaseException:
            try:
                self._client.request({"kind": "rollback"})
            except (XMarkError, OSError):
                pass
            raise
        request: dict = {"kind": "commit"}
        if maintenance is not None:
            request["maintenance"] = maintenance
        reply = self._client.request(request)
        return reply["report"]

    def checkpoint(self) -> dict:
        """Ask the server to checkpoint the served document's WAL."""
        self._require_open()
        reply = self._client.request({"kind": "checkpoint"})
        self._registry.counter("db.checkpoints_total").inc()
        return reply["report"]


class _PageIterator:
    """Rows of one server cursor, fetched page by page on demand.

    A plain class rather than a generator so :meth:`close` releases the
    server-side cursor (and its tenant quota slot) even when the cursor
    was never iterated — closing an unstarted generator would skip its
    cleanup entirely.
    """

    __slots__ = ("_database", "_cursor_id", "_buffer", "_index", "_done",
                 "_closed", "_on_span")

    def __init__(self, database: RemoteDatabase, cursor_id: str,
                 first_rows, first_done: bool, *, on_span=None) -> None:
        self._database = database
        self._cursor_id = cursor_id
        self._buffer = list(first_rows)
        self._index = 0
        self._done = first_done
        self._closed = False
        self._on_span = on_span         # grafts a server span subtree

    def __iter__(self) -> "_PageIterator":
        return self

    def __next__(self) -> str:
        while True:
            if self._index < len(self._buffer):
                row = self._buffer[self._index]
                self._index += 1
                return row
            if self._done or self._closed:
                raise StopIteration
            reply = self._database._client.request(
                {"kind": "fetch", "cursor_id": self._cursor_id,
                 "n": self._database.page_size})
            self._done = reply["done"]
            if self._on_span is not None and reply.get("span"):
                self._on_span(reply["span"])
            self._buffer = list(reply["rows"])
            self._index = 0

    def close(self) -> None:
        """Best-effort ``close_cursor`` when pages remain server-side."""
        if self._closed:
            return
        self._closed = True
        if not self._done and not self._database._closed:
            try:
                reply = self._database._client.request(
                    {"kind": "close_cursor", "cursor_id": self._cursor_id})
                if self._on_span is not None and reply.get("span"):
                    self._on_span(reply["span"])
            except (XMarkError, OSError):
                pass


def parse_url(url: str) -> tuple[str, int, str]:
    """``xmark://host:port/doc`` -> ``(host, port, doc)``."""
    prefix = "xmark://"
    if not url.startswith(prefix):
        raise ProtocolError(f"not an xmark:// URL: {url!r}",
                            code="bad_message")
    rest = url[len(prefix):]
    location, _, document = rest.partition("/")
    host, sep, port_text = location.rpartition(":")
    if not sep or not host:
        raise ProtocolError(
            f"xmark:// URL must name host:port, got {url!r}",
            code="bad_message")
    try:
        port = int(port_text)
    except ValueError:
        raise ProtocolError(f"bad port in {url!r}",
                            code="bad_message") from None
    return host, port, document


def connect_url(url: str, *, tenant: str | None = None,
                page_size: int | None = None,
                timeout: float | None = 30.0, tracing: bool = False,
                trace_log=None) -> RemoteDatabase:
    """Open a remote database from an ``xmark://host:port/doc`` URL.

    This is what ``repro.connect`` delegates to when handed such a URL;
    the returned :class:`RemoteDatabase` serves sessions, prepared
    queries, streaming cursors, and transactions with the embedded
    API's own classes.  ``tracing=True`` starts a distributed trace per
    query — the server's span subtree comes back in the reply and
    ``cursor.profile()`` shows one joined tree; ``trace_log`` appends
    each finished root to a JSON-lines file, as in the embedded facade.
    """
    host, port, document = parse_url(url)
    client = WireClient(host, port, document=document, tenant=tenant,
                        timeout=timeout)
    return RemoteDatabase(client, page_size=page_size, url=url,
                          tracing=tracing, trace_log=trace_log)
