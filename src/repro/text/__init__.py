"""Natural-language-like text generation.

The paper (Section 4.3) derives word-frequency statistics from Shakespeare's
plays and generates text from "the 17000 most frequent words excluding stop
words".  The corpus itself is not shipped here; per DESIGN.md we substitute a
deterministic synthetic vocabulary of the same size whose rank-frequency
behaviour is Zipfian — the property that matters to storage engines
(string-length spread, token repetition, compressibility).

Entities such as person names, email addresses and phone numbers imitate the
paper's "various Internet sources ... scrambled".
"""

from repro.text.generator import TextGenerator
from repro.text.vocabulary import Vocabulary

__all__ = ["Vocabulary", "TextGenerator"]
