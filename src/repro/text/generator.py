"""Generators for prose and scrambled real-world-like entities.

Prose generation feeds the document-centric halves of the benchmark document
(description/annotation subtrees); entity generation feeds names, emails,
phone numbers, addresses, dates and currency amounts.  Everything draws from
an explicit :class:`~repro.rng.distributions.RandomSource`, never from global
state, so output is a pure function of (seed, call sequence).
"""

from __future__ import annotations

from repro.rng.distributions import RandomSource
from repro.text.vocabulary import Vocabulary, default_vocabulary

# Scrambled-directory building blocks, standing in for the paper's
# "electronically available phone directories ... scrambled".
_FIRST_NAMES = (
    "Adem", "Bela", "Ciro", "Dina", "Ewa", "Farid", "Gerd", "Hana", "Ivan",
    "Jana", "Kiri", "Lena", "Mato", "Nils", "Odin", "Pia", "Quim", "Rosa",
    "Sven", "Tove", "Ulla", "Vito", "Wanda", "Xeno", "Yuri", "Zita",
    "Arno", "Brit", "Cleo", "Dario", "Edda", "Falk", "Gina", "Henk",
    "Ines", "Jorg", "Kari", "Lino", "Mira", "Nino",
)
_LAST_NAMES = (
    "Abruca", "Bentham", "Cordoza", "Dumont", "Eriksen", "Fontane", "Grieg",
    "Haldane", "Ibsen", "Jansen", "Kellner", "Lombard", "Marquez", "Norden",
    "Olsson", "Pintor", "Quesada", "Ribeiro", "Sandoval", "Thorsen",
    "Umbrage", "Valdes", "Wexler", "Xerxes", "Ystad", "Zapata",
    "Arkwright", "Bellamy", "Carmine", "Delgado", "Eastman", "Fairfax",
)
_EMAIL_DOMAINS = (
    "example.com", "mail.test", "inbox.invalid", "post.example",
    "box.test", "webmail.invalid", "portal.example", "net.test",
)
_CITIES = (
    "Amsterdam", "Bergen", "Cadiz", "Dresden", "Esbjerg", "Florence",
    "Gdansk", "Haarlem", "Izmir", "Jena", "Krakow", "Lisbon", "Malmo",
    "Nantes", "Oporto", "Pilsen", "Quimper", "Rouen", "Split", "Tartu",
)
_COUNTRIES = (
    "United States", "Netherlands", "Germany", "France", "Norway",
    "Portugal", "Poland", "Estonia", "Croatia", "Turkey",
)
_PROVINCES = (
    "Drenthe", "Friesland", "Gelderland", "Groningen", "Limburg",
    "Overijssel", "Utrecht", "Zeeland",
)
_STREET_KINDS = ("St", "Ave", "Rd", "Blvd", "Way", "Lane")
_EDUCATION_LEVELS = ("High School", "College", "Graduate School", "Other")
_CURRENCIES = ("money order", "creditcard", "personal check", "cash")


class TextGenerator:
    """Prose and entity text driven by a caller-supplied random source."""

    __slots__ = ("_vocabulary",)

    def __init__(self, vocabulary: Vocabulary | None = None) -> None:
        self._vocabulary = vocabulary or default_vocabulary()

    @property
    def vocabulary(self) -> Vocabulary:
        return self._vocabulary

    # -- prose ---------------------------------------------------------------

    def words(self, source: RandomSource, count: int) -> list[str]:
        """``count`` Zipf-distributed words."""
        return [self._vocabulary.sample(source) for _ in range(count)]

    def sentence(self, source: RandomSource, min_words: int = 4, max_words: int = 18) -> str:
        """One space-separated pseudo-sentence (no punctuation, per §4.3)."""
        count = source.uniform_int(min_words, max_words)
        return " ".join(self.words(source, count))

    def paragraph(self, source: RandomSource, min_sentences: int = 1, max_sentences: int = 4) -> str:
        count = source.uniform_int(min_sentences, max_sentences)
        return " ".join(self.sentence(source) for _ in range(count))

    def keyword(self, source: RandomSource) -> str:
        """A short emphasised token (used inside <keyword>/<emph> markup)."""
        return " ".join(self.words(source, source.uniform_int(1, 3)))

    # -- scrambled directory entities -----------------------------------------

    def person_name(self, source: RandomSource) -> str:
        return f"{source.choice(_FIRST_NAMES)} {source.choice(_LAST_NAMES)}"

    def email(self, source: RandomSource, name: str) -> str:
        mailbox = name.lower().replace(" ", ".")
        return f"mailto:{mailbox}{source.uniform_int(0, 99)}@{source.choice(_EMAIL_DOMAINS)}"

    def phone(self, source: RandomSource) -> str:
        return (
            f"+{source.uniform_int(1, 99)} "
            f"({source.uniform_int(10, 999)}) "
            f"{source.uniform_int(1000000, 99999999)}"
        )

    def street(self, source: RandomSource) -> str:
        base = self._vocabulary.sample(source).capitalize()
        return f"{source.uniform_int(1, 9999)} {base} {source.choice(_STREET_KINDS)}"

    def city(self, source: RandomSource) -> str:
        return source.choice(_CITIES)

    def country(self, source: RandomSource) -> str:
        return source.choice(_COUNTRIES)

    def province(self, source: RandomSource) -> str:
        return source.choice(_PROVINCES)

    def zipcode(self, source: RandomSource) -> str:
        return str(source.uniform_int(10000, 99999))

    def homepage(self, source: RandomSource, name: str) -> str:
        slug = name.lower().replace(" ", "/")
        return f"http://www.{source.choice(_EMAIL_DOMAINS)}/~{slug}"

    def creditcard(self, source: RandomSource) -> str:
        return " ".join(str(source.uniform_int(1000, 9999)) for _ in range(4))

    def education(self, source: RandomSource) -> str:
        return source.choice(_EDUCATION_LEVELS)

    def gender(self, source: RandomSource) -> str:
        return "male" if source.boolean() else "female"

    def payment_type(self, source: RandomSource) -> str:
        """One or more accepted payment methods, comma separated."""
        count = source.uniform_int(1, 3)
        picks = source.sample_without_replacement(len(_CURRENCIES), count)
        return ", ".join(_CURRENCIES[i] for i in sorted(picks))

    def date(self, source: RandomSource) -> str:
        """US-style MM/DD/YYYY date in the benchmark's fixed window."""
        month = source.uniform_int(1, 12)
        day = source.uniform_int(1, 28)
        year = source.uniform_int(1998, 2001)
        return f"{month:02d}/{day:02d}/{year}"

    def time(self, source: RandomSource) -> str:
        return (
            f"{source.uniform_int(0, 23):02d}:"
            f"{source.uniform_int(0, 59):02d}:"
            f"{source.uniform_int(0, 59):02d}"
        )

    def amount(self, source: RandomSource, mean: float) -> str:
        """A positive currency amount, exponentially distributed, 2 decimals."""
        value = source.exponential(mean)
        return f"{value + 0.01:.2f}"
