"""Deterministic synthetic vocabulary with Zipfian rank-frequency shape.

Words are built from alternating consonant/vowel digraphs so they look
pronounceable, are pure seven-bit ASCII (paper Section 4.4 restricts the
character set to 7-bit ASCII), and vary in length between 2 and ~14
characters with short words concentrated at the most frequent ranks — the
same qualitative shape as an English frequency list.
"""

from __future__ import annotations

from functools import lru_cache

from repro.rng.distributions import Distribution, RandomSource

DEFAULT_VOCABULARY_SIZE = 17_000

_CONSONANTS = "bcdfghjklmnpqrstvwz"
_VOWELS = "aeiouy"


def _word_for_rank(rank: int) -> str:
    """Deterministically spell the word at a given frequency rank.

    The rank is written in a mixed-radix consonant/vowel system, which
    guarantees (a) all words are distinct and (b) frequent words are short,
    like in natural language.
    """
    syllables: list[str] = []
    remaining = rank
    while True:
        consonant = _CONSONANTS[remaining % len(_CONSONANTS)]
        remaining //= len(_CONSONANTS)
        vowel = _VOWELS[remaining % len(_VOWELS)]
        remaining //= len(_VOWELS)
        syllables.append(consonant + vowel)
        if remaining == 0:
            break
        remaining -= 1
    return "".join(syllables)


class Vocabulary:
    """A frozen, rank-ordered word list with a Zipf sampling distribution.

    ``anchors`` maps frequency ranks to real English words planted into the
    synthetic list.  The benchmark needs a handful of known words at known
    frequencies — Q14 greps descriptions for the word ``gold`` — and anchors
    give those searches deterministic, tunable selectivity.
    """

    __slots__ = ("_words", "_distribution")

    def __init__(
        self,
        size: int = DEFAULT_VOCABULARY_SIZE,
        exponent: float = 1.0,
        anchors: dict[int, str] | None = None,
    ) -> None:
        if size <= 0:
            raise ValueError(f"vocabulary size must be positive, got {size}")
        self._words = [_word_for_rank(rank) for rank in range(size)]
        if anchors:
            for rank, word in anchors.items():
                if not 0 <= rank < size:
                    raise ValueError(f"anchor rank {rank} outside vocabulary of {size}")
                self._words[rank] = word
        self._distribution = Distribution.zipf(size, exponent)

    def __len__(self) -> int:
        return len(self._words)

    def word(self, rank: int) -> str:
        """The word at frequency rank ``rank`` (0 = most frequent)."""
        return self._words[rank]

    def sample(self, source: RandomSource) -> str:
        """Draw one word according to the Zipf distribution."""
        return self._words[self._distribution.sample(source)]

    def contains(self, word: str) -> bool:
        return word in self._words or word in _word_set(len(self._words))

    @property
    def words(self) -> list[str]:
        """A copy of the full rank-ordered word list."""
        return list(self._words)


@lru_cache(maxsize=4)
def _word_set(size: int) -> frozenset[str]:
    return frozenset(_word_for_rank(rank) for rank in range(size))


@lru_cache(maxsize=2)
def default_vocabulary() -> Vocabulary:
    """The shared 17 000-word vocabulary (built once per process)."""
    return Vocabulary(DEFAULT_VOCABULARY_SIZE)
