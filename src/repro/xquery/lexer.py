"""Tokenizer for the XQuery subset.

A hand-written scanner with one twist: element-constructor *content* is not
tokenized — the parser switches the lexer into raw mode and reads character
data directly until the next ``<`` or ``{``.  This mirrors how XQuery's
grammar really interleaves query tokens with XML content.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QuerySyntaxError

# Multi-character symbols first so maximal munch works.
_SYMBOLS = (
    "<<", ":=", "!=", "<=", ">=", "//",
    "(", ")", "[", "]", "{", "}", ",", ";", "/", "@", "$", "*", "+", "-",
    "=", "<", ">", ".",
)

_NAME_START = frozenset("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_")
_NAME_CHARS = _NAME_START | frozenset("0123456789-.")


@dataclass(frozen=True, slots=True)
class Token:
    kind: str          # "name" | "variable" | "string" | "number" | "symbol" | "eof"
    value: str
    line: int
    column: int

    def is_symbol(self, value: str) -> bool:
        return self.kind == "symbol" and self.value == value

    def is_name(self, value: str | None = None) -> bool:
        return self.kind == "name" and (value is None or self.value == value)


class Lexer:
    """Streaming tokenizer with lookahead and a raw-content mode."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.position = 0
        self._peeked: Token | None = None

    # -- positions ---------------------------------------------------------------

    def _location(self, offset: int) -> tuple[int, int]:
        line = self.text.count("\n", 0, offset) + 1
        last = self.text.rfind("\n", 0, offset)
        return line, offset - last

    def error(self, message: str, offset: int | None = None) -> QuerySyntaxError:
        line, column = self._location(self.position if offset is None else offset)
        return QuerySyntaxError(message, line, column)

    # -- token stream ---------------------------------------------------------------

    def peek(self) -> Token:
        if self._peeked is None:
            self._peeked = self._scan()
        return self._peeked

    def next(self) -> Token:
        token = self.peek()
        self._peeked = None
        return token

    def _skip_space(self) -> None:
        text = self.text
        while self.position < len(text):
            char = text[self.position]
            if char in " \t\r\n":
                self.position += 1
            elif text.startswith("(:", self.position):
                end = text.find(":)", self.position + 2)
                if end < 0:
                    raise self.error("unterminated comment '(:'")
                self.position = end + 2
            else:
                return

    def _scan(self) -> Token:
        self._skip_space()
        text = self.text
        if self.position >= len(text):
            line, column = self._location(self.position)
            return Token("eof", "", line, column)
        start = self.position
        line, column = self._location(start)
        char = text[start]

        if char == "$":
            self.position += 1
            name = self._read_name("variable name")
            return Token("variable", name, line, column)
        if char in "\"'":
            end = text.find(char, start + 1)
            if end < 0:
                raise self.error("unterminated string literal", start)
            self.position = end + 1
            return Token("string", text[start + 1 : end], line, column)
        if char.isdigit():
            end = start
            seen_dot = False
            while end < len(text) and (text[end].isdigit() or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    # "1." followed by a name char is a path step, not a float.
                    if end + 1 >= len(text) or not text[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            self.position = end
            return Token("number", text[start:end], line, column)
        if char in _NAME_START:
            name = self._read_name("name")
            return Token("name", name, line, column)
        for symbol in _SYMBOLS:
            if text.startswith(symbol, start):
                self.position = start + len(symbol)
                return Token("symbol", symbol, line, column)
        raise self.error(f"unexpected character {char!r}", start)

    def _read_name(self, what: str) -> str:
        text = self.text
        start = self.position
        if start >= len(text) or text[start] not in _NAME_START:
            raise self.error(f"expected a {what}")
        end = start + 1
        while end < len(text) and text[end] in _NAME_CHARS:
            end += 1
        # QName with one colon (local:convert).
        if end < len(text) and text[end] == ":" and end + 1 < len(text) and text[end + 1] in _NAME_START:
            end += 2
            while end < len(text) and text[end] in _NAME_CHARS:
                end += 1
        self.position = end
        return text[start:end]

    # -- raw constructor-content mode ----------------------------------------------

    def read_constructor_text(self) -> str:
        """Raw character data inside an element constructor, up to '<' or '{'.

        Doubled ``{{``/``}}`` escape to literal braces.
        """
        if self._peeked is not None:
            # Rewind the lookahead: content must be read from its raw start.
            self.position = _token_offset(self)
            self._peeked = None
        text = self.text
        parts: list[str] = []
        while self.position < len(text):
            char = text[self.position]
            if char == "<" or char == "{":
                if char == "{" and text.startswith("{{", self.position):
                    parts.append("{")
                    self.position += 2
                    continue
                break
            if char == "}":
                if text.startswith("}}", self.position):
                    parts.append("}")
                    self.position += 2
                    continue
                raise self.error("unescaped '}' in constructor content")
            parts.append(char)
            self.position += 1
        return "".join(parts)

    def at_raw(self, prefix: str) -> bool:
        """Does the raw input (ignoring the token lookahead) start with prefix?"""
        offset = _token_offset(self) if self._peeked is not None else self.position
        return self.text.startswith(prefix, offset)

    def consume_raw(self, prefix: str) -> None:
        offset = _token_offset(self) if self._peeked is not None else self.position
        if not self.text.startswith(prefix, offset):
            raise self.error(f"expected {prefix!r}", offset)
        self._peeked = None
        self.position = offset + len(prefix)


def _token_offset(lexer: Lexer) -> int:
    """Byte offset where the peeked token began."""
    token = lexer._peeked
    assert token is not None
    # Recompute: find the offset of (line, column).
    if token.line == 1:
        base = 0
    else:
        base = 0
        for _ in range(token.line - 1):
            base = lexer.text.find("\n", base) + 1
    return base + token.column - 1
