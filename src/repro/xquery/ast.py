"""Abstract syntax tree for the XQuery subset."""

from __future__ import annotations

from dataclasses import dataclass, field


class Expr:
    """Base class for all expression nodes."""

    __slots__ = ()


@dataclass(slots=True)
class Literal(Expr):
    """String or numeric literal."""

    value: str | float | int


@dataclass(slots=True)
class VarRef(Expr):
    """``$name``."""

    name: str


@dataclass(slots=True)
class ContextItem(Expr):
    """``.`` — the current context node inside a predicate."""


@dataclass(slots=True)
class Step:
    """One path step: an axis, a node test and optional predicates."""

    axis: str                      # "child" | "descendant" | "attribute" | "text"
    name: str | None               # element/attribute name; None for text()
    predicates: list[Expr] = field(default_factory=list)


@dataclass(slots=True)
class Path(Expr):
    """A path expression: a root expression followed by steps.

    ``root`` is None for absolute paths (``/site/...`` — the benchmark's
    single-document convention, Section 5) or any primary expression
    (variable, function call) for relative ones.
    """

    root: Expr | None
    steps: list[Step]
    absolute_descendant: bool = False   # True for paths starting with //


@dataclass(slots=True)
class Comparison(Expr):
    """General comparison or document-order comparison (``<<``)."""

    op: str                        # = != < <= > >= <<
    left: Expr
    right: Expr


@dataclass(slots=True)
class Arithmetic(Expr):
    op: str                        # + - * div mod
    left: Expr
    right: Expr


@dataclass(slots=True)
class Unary(Expr):
    operand: Expr
    negative: bool = True


@dataclass(slots=True)
class BoolOp(Expr):
    """``and`` / ``or`` over two or more operands."""

    op: str                        # "and" | "or"
    operands: list[Expr]


@dataclass(slots=True)
class FunctionCall(Expr):
    name: str
    args: list[Expr]


@dataclass(slots=True)
class ForClause:
    var: str
    sequence: Expr


@dataclass(slots=True)
class LetClause:
    var: str
    expr: Expr


@dataclass(slots=True)
class OrderSpec:
    key: Expr
    descending: bool = False


@dataclass(slots=True)
class FLWOR(Expr):
    clauses: list[ForClause | LetClause]
    where: Expr | None
    order: list[OrderSpec]
    ret: Expr


@dataclass(slots=True)
class Quantified(Expr):
    """``some $x in E, $y in F satisfies P`` (``every`` also supported)."""

    kind: str                      # "some" | "every"
    bindings: list[ForClause]
    satisfies: Expr


@dataclass(slots=True)
class IfExpr(Expr):
    condition: Expr
    then: Expr
    orelse: Expr


@dataclass(slots=True)
class AttributeCtor:
    """Constructor attribute: literal parts interleaved with expressions."""

    name: str
    parts: list[str | Expr]


@dataclass(slots=True)
class ElementCtor(Expr):
    """Direct element constructor with attribute-value templates."""

    tag: str
    attributes: list[AttributeCtor]
    content: list[str | Expr]


@dataclass(slots=True)
class FunctionDecl:
    """``declare function local:name($a, $b) { body }``."""

    name: str
    params: list[str]
    body: Expr


@dataclass(slots=True)
class Query:
    """A complete query: UDF declarations plus the body expression."""

    functions: dict[str, FunctionDecl]
    body: Expr


def walk(node) -> list:
    """All AST nodes in the subtree (pre-order), for analysis passes."""
    out: list = []
    stack = [node]
    while stack:
        current = stack.pop()
        out.append(current)
        if isinstance(current, Query):
            stack.append(current.body)
            stack.extend(f.body for f in current.functions.values())
        elif isinstance(current, FLWOR):
            for clause in current.clauses:
                stack.append(clause.sequence if isinstance(clause, ForClause) else clause.expr)
            if current.where is not None:
                stack.append(current.where)
            stack.extend(spec.key for spec in current.order)
            stack.append(current.ret)
        elif isinstance(current, Path):
            if current.root is not None:
                stack.append(current.root)
            for step in current.steps:
                stack.extend(step.predicates)
        elif isinstance(current, Comparison):
            stack.extend((current.left, current.right))
        elif isinstance(current, Arithmetic):
            stack.extend((current.left, current.right))
        elif isinstance(current, Unary):
            stack.append(current.operand)
        elif isinstance(current, BoolOp):
            stack.extend(current.operands)
        elif isinstance(current, FunctionCall):
            stack.extend(current.args)
        elif isinstance(current, Quantified):
            stack.extend(binding.sequence for binding in current.bindings)
            stack.append(current.satisfies)
        elif isinstance(current, IfExpr):
            stack.extend((current.condition, current.then, current.orelse))
        elif isinstance(current, ElementCtor):
            for attribute in current.attributes:
                stack.extend(p for p in attribute.parts if isinstance(p, Expr))
            stack.extend(p for p in current.content if isinstance(p, Expr))
    return out
