"""The query evaluator.

Executes a :class:`~repro.xquery.planner.CompiledQuery` against its store,
honouring the plan annotations the per-system planner attached: ID-index
lookups, path-extent scans, and decorrelated (hash / sorted) joins.  All
document access flows through :class:`~repro.xquery.sequence.Navigator`, so
execution cost tracks the store's physical mapping.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from itertools import chain

from repro.errors import QueryError
from repro.obs.trace import NULL_TRACER
from repro.xmlio.dom import Element
from repro.xmlio.serialize import serialize
from repro.xmlio.canonical import canonicalize
from repro.xquery.ast import (
    Arithmetic, BoolOp, Comparison, ContextItem, ElementCtor, Expr, FLWOR,
    ForClause, FunctionCall, IfExpr, LetClause, Literal, Path, Quantified,
    Query, Step, Unary, VarRef,
)
from repro.xquery.functions import BUILTINS, call_builtin
from repro.xquery.planner import CompiledQuery, JoinPlan
from repro.xquery.sequence import (
    NodeItem, Navigator, atomic_to_string, atomize, atomize_item,
    effective_boolean, general_compare, sequence_to_string, to_number, try_number,
)

_DOC_ROOT = object()  # sentinel: conceptual parent of the root element
_EXHAUSTED = object()  # sentinel: a handle iterator ran out mid-peek


def item_text(item, navigator: Navigator) -> str:
    """One result item as text: markup for nodes, lexical form for atomics.

    The single source of row rendering — ``QueryResult.serialize``,
    ``StreamingResult.serialize_item``, and ``Cursor.rowtext`` all
    delegate here, so the three surfaces cannot drift apart.
    """
    if isinstance(item, NodeItem):
        return serialize(navigator.build_dom(item.handle))
    return atomic_to_string(item)


class QueryResult:
    """The result sequence of one query execution."""

    __slots__ = ("items", "navigator")

    def __init__(self, items: list, navigator: Navigator) -> None:
        self.items = items
        self.navigator = navigator

    def __len__(self) -> int:
        return len(self.items)

    def serialize(self) -> str:
        """One line per item: markup for nodes, text for atomics."""
        return "\n".join(item_text(item, self.navigator)
                         for item in self.items)

    def to_element(self) -> Element:
        """The result wrapped in a detached ``<xmark-result>`` element."""
        wrapper = Element("xmark-result")
        pending_atomics: list[str] = []

        def flush() -> None:
            if pending_atomics:
                wrapper.append_text(" ".join(pending_atomics))
                pending_atomics.clear()

        for item in self.items:
            if isinstance(item, NodeItem):
                flush()
                wrapper.append(self.navigator.build_dom(item.handle))
            else:
                pending_atomics.append(atomic_to_string(item))
        flush()
        return wrapper

    def canonical(self, ordered: bool = True) -> str:
        """Canonical form for cross-system equivalence checks."""
        return canonicalize(self.to_element(), ordered=ordered, strip_whitespace=True)


def evaluate(compiled: CompiledQuery, tracer=NULL_TRACER) -> QueryResult:
    """Execute a compiled query and return its result sequence."""
    interpreter = _Interpreter(compiled, tracer=tracer)
    if not tracer.enabled:
        items = interpreter.eval(compiled.query.body)
        return QueryResult(items, interpreter.navigator)
    with tracer.span("evaluator.eval", system=compiled.profile.name) as span:
        items = interpreter.eval(compiled.query.body)
        span.set(items=len(items),
                 index_probes=interpreter.index_probes,
                 index_degrades=interpreter.index_degrades)
    return QueryResult(items, interpreter.navigator)


class StreamingResult:
    """A lazily-produced result sequence (the cursor protocol's backend).

    Iterating yields the same items, in the same order, as
    :func:`evaluate` would put in ``QueryResult.items`` — laziness changes
    *when* work happens, never *what* comes out.  One consumer only: the
    generator pipeline shares the interpreter's binding state, so items
    must be drawn strictly sequentially (which is what a cursor does).
    """

    __slots__ = ("_iterator", "navigator", "span")

    def __init__(self, iterator, navigator: Navigator, span=None) -> None:
        self._iterator = iterator
        self.navigator = navigator
        #: The live ``evaluator.stream`` span when tracing; finished when
        #: the pipeline is exhausted (or its generator is closed).
        self.span = span

    def __iter__(self):
        return self._iterator

    def __next__(self):
        return next(self._iterator)

    def serialize_item(self, item) -> str:
        """One result row as text: markup for nodes, text for atomics."""
        return item_text(item, self.navigator)

    def drain(self) -> QueryResult:
        """Materialize everything still pending into a :class:`QueryResult`."""
        return QueryResult(list(self._iterator), self.navigator)


def evaluate_stream(compiled: CompiledQuery, tracer=NULL_TRACER) -> StreamingResult:
    """Execute a compiled query, yielding result items lazily.

    Plans whose shape admits pipelining (path scans and probes, FLWOR
    without ``order by``) produce their first item after evaluating only
    the bindings before it; everything else transparently materializes
    behind the same iterator.  ``list(evaluate_stream(c))`` equals
    ``evaluate(c).items`` bit-for-bit.
    """
    interpreter = _Interpreter(compiled, tracer=tracer)
    iterator = interpreter.stream(compiled.query.body)
    if not tracer.enabled:
        return StreamingResult(iterator, interpreter.navigator)
    span = tracer.begin("evaluator.stream", system=compiled.profile.name)
    return StreamingResult(_traced_stream(iterator, interpreter, span),
                           interpreter.navigator, span=span)


def _traced_stream(iterator, interpreter: "_Interpreter", span):
    """Count rows out of the pipeline; close the span when it drains.

    The ``finally`` fires on exhaustion *and* on generator close, so an
    abandoned cursor still finishes its span with whatever ran.
    """
    rows = 0
    try:
        for item in iterator:
            rows += 1
            yield item
    finally:
        span.set(rows=rows,
                 index_probes=interpreter.index_probes,
                 index_degrades=interpreter.index_degrades,
                 barriers=interpreter.barriers,
                 stage_rows=dict(interpreter.stage_rows))
        span.finish()


class _Interpreter:
    def __init__(self, compiled: CompiledQuery, tracer=NULL_TRACER) -> None:
        self.compiled = compiled
        self.store = compiled.store
        self.navigator = Navigator(compiled.store)
        self.variables: dict[str, list] = {}
        self.item: NodeItem | None = None
        self.position = 0
        self.size = 0
        self.join_cache: dict[int, object] = {}
        self.tracer = tracer
        #: Per-stage row counting happens only when tracing is live.
        self.trace = tracer.enabled
        #: Execution-fact counters, always maintained (integer adds are
        #: cheap and they make PROFILE exact even across threads, unlike
        #: the shared ``store.stats`` totals).
        self.index_probes = 0
        self.index_degrades = 0
        self.barriers = 0
        self.stage_rows: dict[int, int] = {}

    # -- dispatch -----------------------------------------------------------------

    def eval(self, node: Expr) -> list:
        method = _DISPATCH[type(node)]
        return method(self, node)

    def stream(self, node: Expr):
        """Lazy twin of :meth:`eval`: an iterator over the same items.

        Only expression shapes with a genuine pipeline (paths, FLWOR) get
        a streaming implementation; the rest evaluate eagerly behind the
        iterator, which keeps the item sequence identical by construction.
        """
        method = _STREAM_DISPATCH.get(type(node))
        if method is not None:
            return method(self, node)
        return iter(self.eval(node))

    # -- primaries -----------------------------------------------------------------

    def eval_literal(self, node: Literal) -> list:
        return [node.value]

    def eval_varref(self, node: VarRef) -> list:
        try:
            return self.variables[node.name]
        except KeyError:
            raise QueryError(f"unbound variable ${node.name}") from None

    def eval_context(self, node: ContextItem) -> list:
        if self.item is None:
            raise QueryError("no context item")
        return [self.item]

    # -- paths ----------------------------------------------------------------------

    def eval_path(self, node: Path) -> list:
        plan = self.compiled.path_plans.get(id(node))
        if plan is not None and plan.kind == "id_lookup":
            return self._eval_id_lookup(node, plan)
        if plan is not None and plan.kind in ("value_probe", "range_probe"):
            handles = self._probe_handles(plan)
            if handles is None:         # indexes dropped: degrade to the scan
                self.index_degrades += 1
                return self._apply_steps([_DOC_ROOT], node.steps, 0)
            return self._apply_steps_raw(handles, node.steps, plan.id_step + 1)
        if plan is not None and plan.kind == "path_index":
            handles = self._path_extent(plan)
            if handles is None:         # indexes dropped: degrade to the scan
                self.index_degrades += 1
                return self._apply_steps([_DOC_ROOT], node.steps, 0)
            return self._apply_steps(handles, node.steps, plan.prefix_len)
        if node.root is None:
            return self._apply_steps([_DOC_ROOT], node.steps, 0)
        if isinstance(node.root, FunctionCall) and node.root.name in ("document", "doc"):
            return self._apply_steps([_DOC_ROOT], node.steps, 0)
        base = self.eval(node.root)
        if node.steps and node.steps[0].axis == "self":
            return self._filter_sequence(base, node.steps[0].predicates)
        handles = []
        for item in base:
            if not isinstance(item, NodeItem):
                raise QueryError(f"cannot apply a path step to atomic {item!r}")
            handles.append(item.handle)
        return self._apply_steps(handles, node.steps, 0)

    def _path_extent(self, plan) -> list | None:
        """The extent behind a ``path_index`` plan (None = unavailable)."""
        if plan.source == "index":
            indexes = self.store.indexes
            if indexes is None:
                return None
            extent = indexes.path_extent(plan.prefix)
            if extent is not None:
                self.store.stats.index_lookups += 1
                self.index_probes += 1
            return extent
        return self.store.nodes_at_path(plan.prefix) or []

    def _probe_handles(self, plan) -> list | None:
        """Qualifying extent handles of a value/range probe, in document
        order (the probe answers the step predicate; None = unavailable)."""
        indexes = self.store.indexes
        if indexes is None:
            return None
        if plan.kind == "value_probe":
            index = indexes.value_field(plan.prefix, plan.accessor)
            if index is None:
                return None
            self.store.stats.index_lookups += 1
            self.index_probes += 1
            return [handle for _seq, handle in index.probe(plan.probe_value)]
        index = indexes.sorted_field(plan.prefix, plan.accessor)
        if index is None:
            return None
        self.store.stats.index_lookups += 1
        self.index_probes += 1
        return _doc_order_handles(index.range(plan.op, plan.bound))

    def _eval_id_lookup(self, node: Path, plan) -> list:
        self.index_probes += 1
        handle = self.store.lookup_id(plan.id_value)
        if handle is None:
            return []
        step = node.steps[plan.id_step]
        if step.name is not None and self.navigator.tag(handle) != step.name:
            return []
        survivors = self._filter_step([handle], step.predicates)
        return self._apply_steps_raw(survivors, node.steps, plan.id_step + 1)

    def _apply_steps(self, handles: list, steps: list[Step], start: int) -> list:
        return self._apply_steps_raw(handles, steps, start)

    def _apply_steps_raw(self, handles: list, steps: list[Step], start: int) -> list:
        nav = self.navigator
        current: list = list(handles)
        for index in range(start, len(steps)):
            step = steps[index]
            axis = step.axis
            if axis == "attribute":
                out: list = []
                for handle in current:
                    if handle is _DOC_ROOT:
                        continue
                    value = nav.attribute(handle, step.name)
                    if value is not None:
                        out.append(value)
                current = out
                continue
            if axis == "text":
                out = []
                for handle in current:
                    if handle is _DOC_ROOT:
                        continue
                    out.extend(t for t in nav.child_texts(handle) if t)
                current = out
                continue
            if axis == "self":
                wrapped = [h if isinstance(h, str) else NodeItem(h) for h in current]
                filtered = self._filter_sequence(wrapped, step.predicates)
                current = [i.handle if isinstance(i, NodeItem) else i for i in filtered]
                continue
            multi_context = len(current) > 1
            out = []
            for handle in current:
                out.extend(self._expand_step(handle, step))
            if axis == "descendant" and multi_context and out:
                out = self._dedupe_doc_order(out)
            current = out
        # Wrap node handles; attribute/text steps produced plain strings.
        return [h if isinstance(h, str) else NodeItem(h) for h in current]

    def _expand_step(self, handle, step: Step) -> list:
        """One context handle through one child/descendant step, with the
        step predicates applied (shared by the eager and streaming paths)."""
        nav = self.navigator
        if handle is _DOC_ROOT:
            root = self.store.root()
            found = [root] if (step.name is None or nav.tag(root) == step.name) else []
            if step.axis == "descendant":
                found = found + nav.descendants_by_tag(root, step.name)
        elif step.axis == "child":
            if step.name is None:
                found = nav.children(handle)
            else:
                found = nav.children_by_tag(handle, step.name)
        else:  # descendant
            found = nav.descendants_by_tag(handle, step.name)
        if step.predicates:
            found = self._filter_step(found, step.predicates)
        return found

    # -- streaming (the cursor pipeline) -------------------------------------------

    def stream_path(self, node: Path):
        """Lazy :meth:`eval_path`: handles flow through the step pipeline
        one at a time instead of materializing every intermediate list."""
        plan = self.compiled.path_plans.get(id(node))
        if plan is not None and plan.kind == "id_lookup":
            yield from self.eval_path(node)
            return
        if plan is not None and plan.kind in ("value_probe", "range_probe"):
            handles = self._probe_handles(plan)
            if handles is None:         # indexes dropped: degrade to the scan
                self.index_degrades += 1
                yield from self._stream_steps(iter((_DOC_ROOT,)), node.steps, 0)
            else:
                yield from self._stream_steps(iter(handles), node.steps,
                                              plan.id_step + 1)
            return
        if plan is not None and plan.kind == "path_index":
            handles = self._path_extent(plan)
            if handles is None:
                self.index_degrades += 1
                yield from self._stream_steps(iter((_DOC_ROOT,)), node.steps, 0)
            else:
                yield from self._stream_steps(iter(handles), node.steps,
                                              plan.prefix_len)
            return
        if node.root is None or (isinstance(node.root, FunctionCall)
                                 and node.root.name in ("document", "doc")):
            yield from self._stream_steps(iter((_DOC_ROOT,)), node.steps, 0)
            return
        # Relative path: the base sequence is an arbitrary (usually tiny)
        # expression — keep the eager evaluation behind the iterator.
        yield from self.eval_path(node)

    def _stream_steps(self, handles, steps: list[Step], start: int):
        """Generator-backed step pipeline.

        Depth-first consumption produces the same order as the eager
        breadth-first loop because each step's output is grouped by input
        handle; the two global operations (``self`` filters and
        multi-context descendant dedup) materialize exactly where the
        eager path does, so the item sequence is identical bit-for-bit.
        """
        if start == len(steps):
            for handle in handles:
                yield handle if isinstance(handle, str) else NodeItem(handle)
            return
        if self.trace:
            handles = self._count_stage(handles, start)
        step = steps[start]
        axis = step.axis
        nav = self.navigator
        if axis == "attribute":
            def attributes(source=handles):
                for handle in source:
                    if handle is _DOC_ROOT:
                        continue
                    value = nav.attribute(handle, step.name)
                    if value is not None:
                        yield value
            yield from self._stream_steps(attributes(), steps, start + 1)
            return
        if axis == "text":
            def texts(source=handles):
                for handle in source:
                    if handle is _DOC_ROOT:
                        continue
                    yield from (t for t in nav.child_texts(handle) if t)
            yield from self._stream_steps(texts(), steps, start + 1)
            return
        if axis == "self":
            # Filter-expression semantics are positional over the whole
            # sequence: this step is a pipeline barrier.
            self.barriers += 1
            wrapped = [h if isinstance(h, str) else NodeItem(h) for h in handles]
            filtered = self._filter_sequence(wrapped, step.predicates)
            yield from self._stream_steps(
                (i.handle if isinstance(i, NodeItem) else i for i in filtered),
                steps, start + 1)
            return
        if axis == "descendant":
            source = iter(handles)
            first = next(source, _EXHAUSTED)
            if first is _EXHAUSTED:
                return
            second = next(source, _EXHAUSTED)
            if second is not _EXHAUSTED:
                # Multi-context descendants dedupe and re-sort globally in
                # document order: another barrier, same as the eager path.
                self.barriers += 1
                out: list = []
                for handle in chain((first, second), source):
                    out.extend(self._expand_step(handle, step))
                if out:
                    out = self._dedupe_doc_order(out)
                yield from self._stream_steps(iter(out), steps, start + 1)
                return
            handles = (first,)
        def expanded(source=handles):
            for handle in source:
                yield from self._expand_step(handle, step)
        yield from self._stream_steps(expanded(), steps, start + 1)

    def _count_stage(self, handles, stage: int):
        """Tracing only: count rows entering one step of the pipeline."""
        counts = self.stage_rows
        for handle in handles:
            counts[stage] = counts.get(stage, 0) + 1
            yield handle

    def _dedupe_doc_order(self, handles: list) -> list:
        nav = self.navigator
        seen = set()
        decorated = []
        for handle in handles:
            key = id(handle) if isinstance(handle, Element) else handle
            if key in seen:
                continue
            seen.add(key)
            decorated.append((nav.doc_position(handle), handle))
        decorated.sort(key=lambda pair: pair[0])
        return [handle for _, handle in decorated]

    def _filter_step(self, handles: list, predicates: list[Expr]) -> list:
        """Apply step predicates (position-aware) to raw handles."""
        items = handles
        for predicate in predicates:
            if isinstance(predicate, Literal) and isinstance(predicate.value, (int, float)):
                index = int(predicate.value)
                items = [items[index - 1]] if 1 <= index <= len(items) else []
                continue
            kept = []
            size = len(items)
            saved = (self.item, self.position, self.size)
            for position, handle in enumerate(items, start=1):
                self.item = NodeItem(handle)
                self.position = position
                self.size = size
                value = self.eval(predicate)
                if _is_positional(value):
                    if to_number(value[0]) == position:
                        kept.append(handle)
                elif effective_boolean(value):
                    kept.append(handle)
            self.item, self.position, self.size = saved
            items = kept
        return items

    def _filter_sequence(self, items: list, predicates: list[Expr]) -> list:
        """Filter-expression semantics over an already-built sequence."""
        current = items
        for predicate in predicates:
            if isinstance(predicate, Literal) and isinstance(predicate.value, (int, float)):
                index = int(predicate.value)
                current = [current[index - 1]] if 1 <= index <= len(current) else []
                continue
            kept = []
            size = len(current)
            saved = (self.item, self.position, self.size)
            for position, item in enumerate(current, start=1):
                self.item = item
                self.position = position
                self.size = size
                value = self.eval(predicate)
                if _is_positional(value):
                    if to_number(value[0]) == position:
                        kept.append(item)
                elif effective_boolean(value):
                    kept.append(item)
            self.item, self.position, self.size = saved
            current = kept
        return current

    # -- FLWOR ---------------------------------------------------------------------

    def eval_flwor(self, node: FLWOR) -> list:
        range_plan = self.compiled.range_plans.get(id(node))
        if range_plan is not None:
            probed = self._eval_range_flwor(node, range_plan)
            if probed is not None:
                return probed
            self.index_degrades += 1
        results: list = []
        ordered_rows: list[tuple] = []
        clauses = node.clauses

        def recurse(index: int) -> None:
            if index == len(clauses):
                if node.where is not None and not effective_boolean(self.eval(node.where)):
                    return
                if node.order:
                    keys = tuple(self._order_key(spec.key) for spec in node.order)
                    ordered_rows.append((keys, len(ordered_rows), self.eval(node.ret)))
                else:
                    results.extend(self.eval(node.ret))
                return
            clause = clauses[index]
            if isinstance(clause, ForClause):
                sequence = self.eval(clause.sequence)
                previous = self.variables.get(clause.var)
                for item in sequence:
                    self.variables[clause.var] = [item]
                    recurse(index + 1)
                _restore(self.variables, clause.var, previous)
            else:
                value = self._bind_let(clause)
                previous = self.variables.get(clause.var)
                self.variables[clause.var] = value
                recurse(index + 1)
                _restore(self.variables, clause.var, previous)

        recurse(0)
        if node.order:
            descending = [spec.descending for spec in node.order]
            normalized = _normalize_order_columns(ordered_rows, descending)
            normalized.sort(key=lambda row: row[0])
            for _, _, value in normalized:
                results.extend(value)
        return results

    def stream_flwor(self, node: FLWOR):
        """Lazy :meth:`eval_flwor`: one result item per qualifying binding.

        ``order by`` needs every row before the first can be emitted, and
        range-plan FLWORs are already index-bounded — both evaluate
        eagerly behind the iterator.  The first ``for`` clause's sequence
        itself streams (so a path-scan extent pipelines into the binding
        loop) only when it is a plain Path that does not read the variable
        the clause binds: a suspended generator for any *binding* sequence
        shape (a nested FLWOR, say) would leak its bindings into the
        ``where``/``return`` evaluation between pulls, where the eager
        evaluator would see them unbound.  Path pipelines hold no bindings
        while suspended (predicates evaluate to completion per item), so
        they are the one safely-streamable shape.
        """
        if node.order or self.compiled.range_plans.get(id(node)) is not None:
            self.barriers += 1
            yield from self.eval_flwor(node)
            return
        clauses = node.clauses

        def recurse(index: int):
            if index == len(clauses):
                if node.where is not None and not effective_boolean(self.eval(node.where)):
                    return
                yield from self.stream(node.ret)
                return
            clause = clauses[index]
            previous = self.variables.get(clause.var)
            try:
                if isinstance(clause, ForClause):
                    lazy = (index == 0
                            and isinstance(clause.sequence, Path)
                            and not _reads_var(clause.sequence, clause.var,
                                               self.compiled.query.functions))
                    sequence = (self.stream(clause.sequence) if lazy
                                else self.eval(clause.sequence))
                    for item in sequence:
                        self.variables[clause.var] = [item]
                        yield from recurse(index + 1)
                else:
                    self.variables[clause.var] = self._bind_let(clause)
                    yield from recurse(index + 1)
            finally:
                _restore(self.variables, clause.var, previous)

        yield from recurse(0)

    def _eval_range_flwor(self, node: FLWOR, plan) -> list | None:
        """Iterate only the bindings a sorted-index range probe qualifies;
        the ``where`` clause is the probe, so it is never evaluated.
        Returns None (degrade to the generic FLWOR) when the index is gone.
        """
        indexes = self.store.indexes
        if indexes is None:
            return None
        index = indexes.sorted_field(plan.path, plan.accessor)
        if index is None:
            return None
        self.store.stats.index_lookups += 1
        self.index_probes += 1
        clause = node.clauses[0]
        results: list = []
        previous = self.variables.get(clause.var)
        for handle in _doc_order_handles(index.range(plan.op, plan.bound)):
            self.variables[clause.var] = [NodeItem(handle)]
            results.extend(self.eval(node.ret))
        _restore(self.variables, clause.var, previous)
        return results

    def _order_key(self, key_expr: Expr):
        values = atomize(self.eval(key_expr), self.navigator)
        if not values:
            return None
        return values[0]

    def _bind_let(self, clause: LetClause) -> list:
        plan = self.compiled.join_plans.get(id(clause))
        if plan is None:
            return self.eval(clause.expr)
        if plan.strategy == "hash":
            return self._hash_probe(clause, plan)
        return self._sorted_probe(clause, plan)

    def _hash_probe(self, clause: LetClause, plan: JoinPlan) -> list:
        if plan.index_kind == "value":
            probed = self._indexed_hash_probe(plan)
            if probed is not None:
                return self._join_returns(clause, plan, probed)
            self.index_degrades += 1
        cache = self.join_cache.get(id(clause))
        if cache is None:
            table: dict = {}
            base_items = self.eval(plan.inner_base)
            previous = self.variables.get(plan.inner_var)
            for index, item in enumerate(base_items):
                self.variables[plan.inner_var] = [item]
                for value in atomize(self.eval(plan.inner_key), self.navigator):
                    table.setdefault(_join_key(value), []).append((index, item))
            _restore(self.variables, plan.inner_var, previous)
            cache = table
            self.join_cache[id(clause)] = cache
        matches: list[tuple[int, object]] = []
        seen: set[int] = set()
        for value in atomize(self.eval(plan.outer_key), self.navigator):
            for index, item in cache.get(_join_key(value), ()):
                if index not in seen:
                    seen.add(index)
                    matches.append((index, item))
        matches.sort(key=lambda pair: pair[0])
        return self._join_returns(clause, plan, [item for _, item in matches])

    def _indexed_hash_probe(self, plan: JoinPlan) -> list | None:
        """Build-side rows matching the outer key, straight from the value
        index (no per-query hash table).  None = index unavailable."""
        indexes = self.store.indexes
        if indexes is None:
            return None
        index = indexes.value_field(plan.index_path, plan.index_accessor)
        if index is None:
            return None
        self.store.stats.index_lookups += 1
        self.index_probes += 1
        entries: list[tuple[int, object]] = []
        for value in atomize(self.eval(plan.outer_key), self.navigator):
            entries.extend(index.probe(value))
        return [NodeItem(handle) for handle in _doc_order_handles(entries)]

    def _indexed_sorted_probe(self, plan: JoinPlan) -> list | None:
        """Build-side rows satisfying ``outer OP scale*key``, bisected from
        the sorted index (no per-query sort).  None = index unavailable."""
        indexes = self.store.indexes
        if indexes is None:
            return None
        index = indexes.sorted_field(plan.index_path, plan.index_accessor)
        if index is None:
            return None
        outer_values = atomize(self.eval(plan.outer_key), self.navigator)
        if not outer_values:
            return []
        outer = try_number(outer_values[0])
        if outer is None:
            return []
        self.store.stats.index_lookups += 1
        self.index_probes += 1
        entries = index.outer_compare(plan.op, outer, plan.index_scale)
        return [NodeItem(handle) for _seq, handle in entries]

    def _sorted_probe(self, clause: LetClause, plan: JoinPlan) -> list:
        if plan.index_kind == "sorted":
            probed = self._indexed_sorted_probe(plan)
            if probed is not None:
                return self._join_returns(clause, plan, probed)
            self.index_degrades += 1
        cache = self.join_cache.get(id(clause))
        if cache is None:
            keys: list[float] = []
            items: list = []
            base_items = self.eval(plan.inner_base)
            previous = self.variables.get(plan.inner_var)
            decorated = []
            for index, item in enumerate(base_items):
                self.variables[plan.inner_var] = [item]
                for value in atomize(self.eval(plan.inner_key), self.navigator):
                    number = try_number(value)
                    if number is not None:
                        decorated.append((number, index, item))
            _restore(self.variables, plan.inner_var, previous)
            decorated.sort(key=lambda entry: entry[0])
            keys = [entry[0] for entry in decorated]
            items = [entry[2] for entry in decorated]
            cache = (keys, items)
            self.join_cache[id(clause)] = cache
        keys, items = cache
        outer_values = atomize(self.eval(plan.outer_key), self.navigator)
        if not outer_values:
            return []
        outer = try_number(outer_values[0])
        if outer is None:
            return []
        if plan.op == ">":          # outer > inner  ->  inner < outer
            selected = items[: bisect_left(keys, outer)]
        elif plan.op == ">=":
            selected = items[: bisect_right(keys, outer)]
        elif plan.op == "<":
            selected = items[bisect_right(keys, outer):]
        elif plan.op == "<=":
            selected = items[bisect_left(keys, outer):]
        else:
            raise QueryError(f"sorted join cannot evaluate op {plan.op!r}")
        return self._join_returns(clause, plan, selected)

    def _join_returns(self, clause: LetClause, plan: JoinPlan, items: list) -> list:
        flwor = clause.expr
        assert isinstance(flwor, FLWOR)
        if isinstance(flwor.ret, VarRef) and flwor.ret.name == plan.inner_var:
            return list(items)
        out: list = []
        previous = self.variables.get(plan.inner_var)
        for item in items:
            self.variables[plan.inner_var] = [item]
            out.extend(self.eval(flwor.ret))
        _restore(self.variables, plan.inner_var, previous)
        return out

    # -- quantified / conditional ------------------------------------------------------

    def eval_quantified(self, node: Quantified) -> list:
        bindings = node.bindings

        def recurse(index: int) -> bool:
            if index == len(bindings):
                return effective_boolean(self.eval(node.satisfies))
            clause = bindings[index]
            sequence = self.eval(clause.sequence)
            previous = self.variables.get(clause.var)
            try:
                if node.kind == "some":
                    return any(
                        self._bind_and(clause.var, [item], recurse, index + 1)
                        for item in sequence
                    )
                return all(
                    self._bind_and(clause.var, [item], recurse, index + 1)
                    for item in sequence
                )
            finally:
                _restore(self.variables, clause.var, previous)

        return [recurse(0)]

    def _bind_and(self, var: str, value: list, fn, arg) -> bool:
        self.variables[var] = value
        return fn(arg)

    def eval_if(self, node: IfExpr) -> list:
        if effective_boolean(self.eval(node.condition)):
            return self.eval(node.then)
        return self.eval(node.orelse)

    # -- operators --------------------------------------------------------------------

    def eval_comparison(self, node: Comparison) -> list:
        left = self.eval(node.left)
        right = self.eval(node.right)
        if node.op == "<<":
            return [self._before(left, right)]
        return [general_compare(node.op, left, right, self.navigator)]

    def _before(self, left: list, right: list) -> bool:
        nav = self.navigator
        for a in left:
            if not isinstance(a, NodeItem):
                continue
            pos_a = nav.doc_position(a.handle)
            for b in right:
                if not isinstance(b, NodeItem):
                    continue
                if pos_a < nav.doc_position(b.handle):
                    return True
        return False

    def eval_arithmetic(self, node: Arithmetic) -> list:
        left = atomize(self.eval(node.left), self.navigator)
        right = atomize(self.eval(node.right), self.navigator)
        if not left or not right:
            return []  # arithmetic over the empty sequence is empty
        a = to_number(left[0])
        b = to_number(right[0])
        op = node.op
        if op == "+":
            return [a + b]
        if op == "-":
            return [a - b]
        if op == "*":
            return [a * b]
        if op == "div":
            return [a / b]
        if op == "mod":
            return [a % b]
        raise QueryError(f"unknown arithmetic operator {op!r}")

    def eval_unary(self, node: Unary) -> list:
        values = atomize(self.eval(node.operand), self.navigator)
        if not values:
            return []
        return [-to_number(values[0])]

    def eval_boolop(self, node: BoolOp) -> list:
        if node.op == "and":
            for operand in node.operands:
                if not effective_boolean(self.eval(operand)):
                    return [False]
            return [True]
        for operand in node.operands:
            if effective_boolean(self.eval(operand)):
                return [True]
        return [False]

    # -- functions -----------------------------------------------------------------------

    def eval_call(self, node: FunctionCall) -> list:
        declared = self.compiled.query.functions.get(node.name)
        if declared is not None:
            if len(node.args) != len(declared.params):
                raise QueryError(
                    f"{node.name}() expects {len(declared.params)} args, got {len(node.args)}"
                )
            saved = [(p, self.variables.get(p)) for p in declared.params]
            for param, arg in zip(declared.params, node.args):
                self.variables[param] = self.eval(arg)
            try:
                return self.eval(declared.body)
            finally:
                for param, previous in saved:
                    _restore(self.variables, param, previous)
        if node.name == "last":
            return [self.size]
        if node.name == "position":
            return [self.position]
        args = [self.eval(argument) for argument in node.args]
        return call_builtin(node.name, args, self.navigator)

    # -- constructors ------------------------------------------------------------------------

    def eval_ctor(self, node: ElementCtor) -> list:
        element = Element(node.tag)
        for attribute in node.attributes:
            pieces: list[str] = []
            for part in attribute.parts:
                if isinstance(part, str):
                    pieces.append(part)
                else:
                    pieces.append(sequence_to_string(self.eval(part), self.navigator))
            element.attributes[attribute.name] = "".join(pieces)
        for part in node.content:
            if isinstance(part, str):
                if part.strip():
                    element.append_text(part)
                continue
            if isinstance(part, ElementCtor):
                element.append(self.eval_ctor(part)[0].handle)
                continue
            values = self.eval(part)
            previous_atomic = False
            for item in values:
                if isinstance(item, NodeItem):
                    element.append(self.navigator.build_dom(item.handle))
                    previous_atomic = False
                else:
                    text = atomic_to_string(item)
                    if previous_atomic:
                        element.append_text(" " + text)
                    else:
                        element.append_text(text)
                    previous_atomic = True
        return [NodeItem(element)]


def _reads_var(expr: Expr, name: str, functions=()) -> bool:
    """Whether ``expr`` may read ``$name`` (shadowing guard: a for-clause
    sequence reading the variable the clause itself binds must be fully
    evaluated before the binding loop starts mutating it).

    A call to a *declared* function counts as a potential read: UDF bodies
    are dynamically scoped (free variables resolve against the bindings
    live at call time) and invisible to the AST walk of ``expr``.
    """
    from repro.xquery.ast import walk
    for node in walk(expr):
        if isinstance(node, VarRef) and node.name == name:
            return True
        if isinstance(node, FunctionCall) and node.name in functions:
            return True
    return False


def _is_positional(value: list) -> bool:
    return (
        len(value) == 1
        and isinstance(value[0], (int, float))
        and not isinstance(value[0], bool)
    )


def _restore(variables: dict, name: str, previous) -> None:
    if previous is None:
        variables.pop(name, None)
    else:
        variables[name] = previous


def _join_key(value):
    number = try_number(value)
    return number if number is not None else atomic_to_string(value)


def _doc_order_handles(entries: list[tuple[int, object]]) -> list:
    """Deduplicate index entries by build sequence and restore document
    order (a node matches once however many of its values qualified)."""
    seen: set[int] = set()
    deduped: list[tuple[int, object]] = []
    for seq, handle in entries:
        if seq not in seen:
            seen.add(seq)
            deduped.append((seq, handle))
    deduped.sort(key=lambda pair: pair[0])
    return [handle for _seq, handle in deduped]


def _normalize_order_columns(rows: list[tuple], descending: list[bool]) -> list[tuple]:
    """Rewrite order-by keys so each column compares homogeneously.

    A column sorts numerically only when *every* row's key casts to a number
    (XPath 1.0-ish: one generic string defeats numeric ordering); empty keys
    sort first.  Row tuples are (keys, arrival, result) — arrival keeps the
    sort stable.
    """
    if not rows:
        return []
    column_count = len(descending)
    numeric_columns = []
    for column in range(column_count):
        numeric_columns.append(all(
            row[0][column] is None or try_number(row[0][column]) is not None
            for row in rows
        ))
    normalized = []
    for keys, arrival, value in rows:
        out_keys = []
        for column in range(column_count):
            value_in = keys[column]
            if numeric_columns[column]:
                key = (0, 0.0) if value_in is None else (1, to_number(value_in))
            else:
                key = (0, "") if value_in is None else (1, atomic_to_string(value_in))
            out_keys.append(_Rev(key) if descending[column] else key)
        normalized.append((tuple(out_keys), arrival, value))
    return normalized


class _Rev:
    """Inverts comparison for descending order-by keys."""

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def __lt__(self, other: "_Rev") -> bool:
        return other.value < self.value

    def __eq__(self, other) -> bool:
        return isinstance(other, _Rev) and other.value == self.value


_DISPATCH = {
    Literal: _Interpreter.eval_literal,
    VarRef: _Interpreter.eval_varref,
    ContextItem: _Interpreter.eval_context,
    Path: _Interpreter.eval_path,
    FLWOR: _Interpreter.eval_flwor,
    Quantified: _Interpreter.eval_quantified,
    IfExpr: _Interpreter.eval_if,
    Comparison: _Interpreter.eval_comparison,
    Arithmetic: _Interpreter.eval_arithmetic,
    Unary: _Interpreter.eval_unary,
    BoolOp: _Interpreter.eval_boolop,
    FunctionCall: _Interpreter.eval_call,
    ElementCtor: _Interpreter.eval_ctor,
}

#: Expression shapes with a genuine lazy pipeline; everything else
#: evaluates eagerly behind the iterator (see :meth:`_Interpreter.stream`).
_STREAM_DISPATCH = {
    Path: _Interpreter.stream_path,
    FLWOR: _Interpreter.stream_flwor,
}
