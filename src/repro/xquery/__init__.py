"""XQuery-subset compiler and evaluator.

The paper expresses its twenty queries in XQuery (the Feb-2001 draft, the
successor to Quilt).  This package implements the exact subset those queries
need — FLWOR with multiple for/let bindings, quantified expressions with the
``<<`` document-order operator, child//descendant/attribute/text() steps with
positional and boolean predicates, element constructors with attribute-value
templates, user-defined functions (Q18), ``order by`` (Q19) and the standard
function library (count, contains, empty, not, string, distinct-values,
zero-or-one, exactly-one, sum, last) — over the abstract
:class:`~repro.storage.interface.Store` API.

Compilation is per-system: the :mod:`~repro.xquery.planner` resolves access
paths against the store's metadata (catalog tables for the relational
mappings, the structural summary for System D) and picks join strategies
according to the system profile, so compile cost and plan quality differ
between architectures the way Table 2 and Table 3 report.
"""

from repro.xquery.parser import parse_query
from repro.xquery.planner import CompiledQuery, SystemProfile, compile_query
from repro.xquery.evaluator import evaluate, QueryResult

__all__ = [
    "parse_query", "compile_query", "evaluate",
    "CompiledQuery", "SystemProfile", "QueryResult",
]
