"""The value model: sequences of items, atomization, comparisons.

Items are either atomic Python values (``str``/``int``/``float``/``bool``)
or :class:`NodeItem` wrappers around store handles.  Constructed elements
(from element constructors) are wrapped the same way with a DOM Element as
the handle; the :class:`Navigator` dispatches those to direct DOM access.

Casting follows the paper's experimental setup: "all character data in the
original document, including references, were stored as strings and cast at
runtime to richer data types whenever necessary" — comparisons and
arithmetic coerce strings to numbers at evaluation time, every time.
"""

from __future__ import annotations

from repro.errors import TypeCoercionError
from repro.storage.interface import Store
from repro.xmlio.dom import Element, Text


class NodeItem:
    """A node in a sequence; wraps an opaque store handle or a DOM Element."""

    __slots__ = ("handle",)

    def __init__(self, handle) -> None:
        self.handle = handle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeItem({self.handle!r})"


class Navigator:
    """Uniform navigation over store handles and constructed DOM elements."""

    __slots__ = ("store", "_dom_handles")

    def __init__(self, store: Store) -> None:
        self.store = store
        # DomStore's native handles ARE Elements; only then can an Element
        # have a document position.
        from repro.storage.dom_store import DomStore
        self._dom_handles = isinstance(store, DomStore)

    def is_dom(self, handle) -> bool:
        return isinstance(handle, Element)

    def tag(self, handle) -> str:
        if isinstance(handle, Element):
            return handle.tag
        return self.store.tag(handle)

    def children_by_tag(self, handle, tag: str) -> list:
        if isinstance(handle, Element):
            return handle.find_all(tag)
        return self.store.children_by_tag(handle, tag)

    def children(self, handle) -> list:
        if isinstance(handle, Element):
            return list(handle.child_elements())
        return self.store.children(handle)

    def descendants_by_tag(self, handle, tag: str) -> list:
        if isinstance(handle, Element):
            return list(handle.descendants(tag))
        return self.store.descendants_by_tag(handle, tag)

    def attribute(self, handle, name: str) -> str | None:
        if isinstance(handle, Element):
            return handle.attributes.get(name)
        return self.store.attribute(handle, name)

    def child_texts(self, handle) -> list[str]:
        if isinstance(handle, Element):
            return [c.value for c in handle.children if isinstance(c, Text)]
        return self.store.child_texts(handle)

    def string_value(self, handle) -> str:
        if isinstance(handle, Element):
            return handle.text_content()
        return self.store.string_value(handle)

    def doc_position(self, handle):
        if isinstance(handle, Element) and not self._dom_handles:
            raise TypeCoercionError("constructed nodes have no document order")
        try:
            return self.store.doc_position(handle)
        except KeyError:
            raise TypeCoercionError("constructed nodes have no document order") from None

    def build_dom(self, handle) -> Element:
        if isinstance(handle, Element):
            return handle.copy()
        return self.store.build_dom(handle)


# -- atomization -------------------------------------------------------------------


def atomize_item(item, navigator: Navigator):
    """Node -> string value; atomics pass through."""
    if isinstance(item, NodeItem):
        return navigator.string_value(item.handle)
    return item


def atomize(sequence: list, navigator: Navigator) -> list:
    return [atomize_item(item, navigator) for item in sequence]


def atomic_to_string(value) -> str:
    """Stable textual form of one atomic value (for constructors/results)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return format(value, ".10g")
    return str(value)


def sequence_to_string(sequence: list, navigator: Navigator) -> str:
    """Space-joined string of the atomized sequence (attribute templates)."""
    return " ".join(atomic_to_string(atomize_item(item, navigator)) for item in sequence)


# -- boolean / numeric coercions ---------------------------------------------------------


def effective_boolean(sequence: list) -> bool:
    """XPath-style effective boolean value."""
    if not sequence:
        return False
    first = sequence[0]
    if isinstance(first, NodeItem):
        return True
    if len(sequence) == 1:
        if isinstance(first, bool):
            return first
        if isinstance(first, (int, float)):
            return first != 0
        if isinstance(first, str):
            return bool(first)
    return True


def try_number(value) -> float | None:
    """Coerce one atomic to float, or None when impossible."""
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError:
            return None
    return None


def to_number(value) -> float:
    number = try_number(value)
    if number is None:
        raise TypeCoercionError(f"cannot cast {value!r} to a number")
    return number


# -- comparisons -----------------------------------------------------------------------


def compare_atomics(op: str, left, right) -> bool:
    """Value comparison with runtime string->number casting.

    Ordering operators always compare numerically (the benchmark's casting
    challenge); equality compares numerically when both sides cast, else as
    strings.
    """
    if op in ("<", "<=", ">", ">="):
        left_num = try_number(left)
        right_num = try_number(right)
        if left_num is None or right_num is None:
            return False
        if op == "<":
            return left_num < right_num
        if op == "<=":
            return left_num <= right_num
        if op == ">":
            return left_num > right_num
        return left_num >= right_num
    left_num = try_number(left)
    right_num = try_number(right)
    if left_num is not None and right_num is not None:
        equal = left_num == right_num
    else:
        equal = atomic_to_string(left) == atomic_to_string(right)
    return equal if op == "=" else not equal


def general_compare(op: str, left: list, right: list, navigator: Navigator) -> bool:
    """Existential comparison over two sequences."""
    if not left or not right:
        return False
    left_atoms = atomize(left, navigator)
    right_atoms = atomize(right, navigator)
    for a in left_atoms:
        for b in right_atoms:
            if compare_atomics(op, a, b):
                return True
    return False
