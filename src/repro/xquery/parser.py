"""Recursive-descent parser for the XQuery subset."""

from __future__ import annotations

from repro.errors import QuerySyntaxError
from repro.xquery.ast import (
    Arithmetic, AttributeCtor, BoolOp, Comparison, ContextItem, ElementCtor,
    Expr, FLWOR, ForClause, FunctionCall, FunctionDecl, IfExpr, LetClause,
    Literal, OrderSpec, Path, Quantified, Query, Step, Unary, VarRef,
)
from repro.xquery.lexer import Lexer, Token

_KEYWORDS_STOPPING_PATH = frozenset((
    "return", "where", "order", "in", "satisfies", "then", "else",
    "and", "or", "div", "mod", "let", "for", "some", "every",
    "ascending", "descending", "by", "to",
))

_COMPARISON_OPS = ("=", "!=", "<=", ">=", "<", ">", "<<")


def parse_query(text: str) -> Query:
    """Parse a complete query (declarations + body)."""
    parser = _Parser(Lexer(text))
    query = parser.parse_query()
    trailing = parser.lexer.peek()
    if trailing.kind != "eof":
        raise QuerySyntaxError(
            f"unexpected trailing input {trailing.value!r}", trailing.line, trailing.column
        )
    return query


class _Parser:
    def __init__(self, lexer: Lexer) -> None:
        self.lexer = lexer

    # -- helpers --------------------------------------------------------------

    def _expect_symbol(self, value: str) -> Token:
        token = self.lexer.next()
        if not token.is_symbol(value):
            raise QuerySyntaxError(
                f"expected {value!r}, got {token.value!r}", token.line, token.column
            )
        return token

    def _expect_name(self, value: str | None = None) -> Token:
        token = self.lexer.next()
        if token.kind != "name" or (value is not None and token.value != value):
            expected = value or "a name"
            raise QuerySyntaxError(
                f"expected {expected}, got {token.value!r}", token.line, token.column
            )
        return token

    def _expect_variable(self) -> str:
        token = self.lexer.next()
        if token.kind != "variable":
            raise QuerySyntaxError(
                f"expected a variable, got {token.value!r}", token.line, token.column
            )
        return token.value

    # -- entry points ------------------------------------------------------------

    def parse_query(self) -> Query:
        functions: dict[str, FunctionDecl] = {}
        while self.lexer.peek().is_name("declare"):
            decl = self._parse_function_decl()
            functions[decl.name] = decl
        body = self.parse_expr()
        return Query(functions, body)

    def _parse_function_decl(self) -> FunctionDecl:
        self._expect_name("declare")
        self._expect_name("function")
        name = self._expect_name().value
        self._expect_symbol("(")
        params: list[str] = []
        if not self.lexer.peek().is_symbol(")"):
            params.append(self._expect_variable())
            while self.lexer.peek().is_symbol(","):
                self.lexer.next()
                params.append(self._expect_variable())
        self._expect_symbol(")")
        self._expect_symbol("{")
        body = self.parse_expr()
        self._expect_symbol("}")
        if self.lexer.peek().is_symbol(";"):
            self.lexer.next()
        return FunctionDecl(name, params, body)

    # -- expression grammar ----------------------------------------------------------

    def parse_expr(self) -> Expr:
        token = self.lexer.peek()
        if token.is_name("for") or token.is_name("let"):
            return self._parse_flwor()
        if token.is_name("some") or token.is_name("every"):
            return self._parse_quantified()
        if token.is_name("if"):
            return self._parse_if()
        return self._parse_or()

    def _parse_flwor(self) -> FLWOR:
        clauses: list[ForClause | LetClause] = []
        while True:
            token = self.lexer.peek()
            if token.is_name("for"):
                self.lexer.next()
                while True:
                    var = self._expect_variable()
                    self._expect_name("in")
                    clauses.append(ForClause(var, self.parse_expr()))
                    if self.lexer.peek().is_symbol(","):
                        self.lexer.next()
                        continue
                    break
            elif token.is_name("let"):
                self.lexer.next()
                while True:
                    var = self._expect_variable()
                    self._expect_symbol(":=")
                    clauses.append(LetClause(var, self.parse_expr()))
                    if self.lexer.peek().is_symbol(","):
                        self.lexer.next()
                        continue
                    break
            else:
                break
        where = None
        if self.lexer.peek().is_name("where"):
            self.lexer.next()
            where = self.parse_expr()
        order: list[OrderSpec] = []
        if self.lexer.peek().is_name("order"):
            self.lexer.next()
            self._expect_name("by")
            while True:
                key = self.parse_expr()
                descending = False
                if self.lexer.peek().is_name("descending"):
                    self.lexer.next()
                    descending = True
                elif self.lexer.peek().is_name("ascending"):
                    self.lexer.next()
                order.append(OrderSpec(key, descending))
                if self.lexer.peek().is_symbol(","):
                    self.lexer.next()
                    continue
                break
        self._expect_name("return")
        ret = self.parse_expr()
        return FLWOR(clauses, where, order, ret)

    def _parse_quantified(self) -> Quantified:
        kind = self.lexer.next().value
        bindings: list[ForClause] = []
        while True:
            var = self._expect_variable()
            self._expect_name("in")
            bindings.append(ForClause(var, self.parse_expr()))
            if self.lexer.peek().is_symbol(","):
                self.lexer.next()
                continue
            break
        self._expect_name("satisfies")
        return Quantified(kind, bindings, self.parse_expr())

    def _parse_if(self) -> IfExpr:
        self._expect_name("if")
        self._expect_symbol("(")
        condition = self.parse_expr()
        self._expect_symbol(")")
        self._expect_name("then")
        then = self.parse_expr()
        self._expect_name("else")
        orelse = self.parse_expr()
        return IfExpr(condition, then, orelse)

    def _parse_or(self) -> Expr:
        operands = [self._parse_and()]
        while self.lexer.peek().is_name("or"):
            self.lexer.next()
            operands.append(self._parse_and())
        return operands[0] if len(operands) == 1 else BoolOp("or", operands)

    def _parse_and(self) -> Expr:
        operands = [self._parse_comparison()]
        while self.lexer.peek().is_name("and"):
            self.lexer.next()
            operands.append(self._parse_comparison())
        return operands[0] if len(operands) == 1 else BoolOp("and", operands)

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        token = self.lexer.peek()
        if token.kind == "symbol" and token.value in _COMPARISON_OPS:
            self.lexer.next()
            right = self._parse_additive()
            return Comparison(token.value, left, right)
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            token = self.lexer.peek()
            if token.is_symbol("+") or token.is_symbol("-"):
                self.lexer.next()
                left = Arithmetic(token.value, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            token = self.lexer.peek()
            if token.is_symbol("*") or token.is_name("div") or token.is_name("mod"):
                self.lexer.next()
                op = "*" if token.value == "*" else token.value
                left = Arithmetic(op, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expr:
        if self.lexer.peek().is_symbol("-"):
            self.lexer.next()
            return Unary(self._parse_unary())
        return self._parse_path()

    # -- paths -----------------------------------------------------------------------

    def _parse_path(self) -> Expr:
        token = self.lexer.peek()
        if token.is_symbol("/") or token.is_symbol("//"):
            self.lexer.next()
            steps = [self._parse_step(descendant=token.value == "//")]
            return self._parse_step_tail(Path(None, steps))
        primary = self._parse_primary()
        return self._parse_step_tail_from_primary(primary)

    def _parse_step_tail_from_primary(self, primary: Expr) -> Expr:
        token = self.lexer.peek()
        if token.is_symbol("/") or token.is_symbol("//"):
            path = Path(primary, [])
            return self._parse_step_tail(path)
        return primary

    def _parse_step_tail(self, path: Path) -> Path:
        while True:
            token = self.lexer.peek()
            if token.is_symbol("/"):
                self.lexer.next()
                path.steps.append(self._parse_step(descendant=False))
            elif token.is_symbol("//"):
                self.lexer.next()
                path.steps.append(self._parse_step(descendant=True))
            else:
                return path

    def _parse_step(self, descendant: bool) -> Step:
        token = self.lexer.next()
        if token.is_symbol("@"):
            name = self._expect_name().value
            step = Step("attribute", name)
        elif token.kind == "name":
            if token.value == "text" and self.lexer.peek().is_symbol("("):
                self.lexer.next()
                self._expect_symbol(")")
                step = Step("text", None)
            else:
                step = Step("child", token.value)
        elif token.is_symbol("*"):
            step = Step("child", None)
        else:
            raise QuerySyntaxError(
                f"expected a step, got {token.value!r}", token.line, token.column
            )
        if descendant:
            step.axis = {"child": "descendant", "attribute": "attribute",
                         "text": "text"}[step.axis]
            if step.axis == "attribute" or step.axis == "text":
                raise QuerySyntaxError(
                    "'//' must be followed by an element test", token.line, token.column
                )
        while self.lexer.peek().is_symbol("["):
            self.lexer.next()
            step.predicates.append(self.parse_expr())
            self._expect_symbol("]")
        return step

    # -- primaries ----------------------------------------------------------------------

    def _parse_primary(self) -> Expr:
        token = self.lexer.peek()
        if token.kind == "variable":
            self.lexer.next()
            return self._with_primary_predicates(VarRef(token.value))
        if token.kind == "string":
            self.lexer.next()
            return Literal(token.value)
        if token.kind == "number":
            self.lexer.next()
            value = float(token.value) if "." in token.value else int(token.value)
            return Literal(value)
        if token.is_symbol("("):
            self.lexer.next()
            inner = self.parse_expr()
            self._expect_symbol(")")
            return self._with_primary_predicates(inner)
        if token.is_symbol("<"):
            return self._parse_constructor()
        if token.is_symbol("."):
            self.lexer.next()
            return ContextItem()
        if token.is_symbol("@"):
            # Context-relative attribute step: [@income >= 1000].
            self.lexer.next()
            name = self._expect_name().value
            return Path(ContextItem(), [Step("attribute", name)])
        if token.kind == "name":
            self.lexer.next()
            if self.lexer.peek().is_symbol("("):
                if token.value == "text":
                    self.lexer.next()
                    self._expect_symbol(")")
                    return Path(ContextItem(), [Step("text", None)])
                return self._parse_function_call(token.value)
            # Context-relative child step (bare name inside a predicate).
            step = Step("child", token.value)
            while self.lexer.peek().is_symbol("["):
                self.lexer.next()
                step.predicates.append(self.parse_expr())
                self._expect_symbol("]")
            return Path(ContextItem(), [step])
        raise QuerySyntaxError(
            f"unexpected token {token.value!r}", token.line, token.column
        )

    def _with_primary_predicates(self, expr: Expr) -> Expr:
        """Allow predicates straight after a primary: ``$x[1]``, ``(...)[2]``."""
        if not self.lexer.peek().is_symbol("["):
            return expr
        path = Path(expr, [])
        # Model as a path with a single self-ish step carrying predicates:
        step = Step("self", None)
        while self.lexer.peek().is_symbol("["):
            self.lexer.next()
            step.predicates.append(self.parse_expr())
            self._expect_symbol("]")
        path.steps.append(step)
        return path

    def _parse_function_call(self, name: str) -> Expr:
        self._expect_symbol("(")
        args: list[Expr] = []
        if not self.lexer.peek().is_symbol(")"):
            args.append(self.parse_expr())
            while self.lexer.peek().is_symbol(","):
                self.lexer.next()
                args.append(self.parse_expr())
        self._expect_symbol(")")
        call = FunctionCall(name, args)
        # document("auction.xml")/site/... — steps may follow a call.
        return call

    # -- element constructors --------------------------------------------------------------

    def _parse_constructor(self) -> ElementCtor:
        self.lexer.consume_raw("<")
        tag = self._raw_name()
        attributes: list[AttributeCtor] = []
        while True:
            self._raw_skip_space()
            if self.lexer.at_raw("/>"):
                self.lexer.consume_raw("/>")
                return ElementCtor(tag, attributes, [])
            if self.lexer.at_raw(">"):
                self.lexer.consume_raw(">")
                break
            attributes.append(self._parse_ctor_attribute())
        content: list[str | Expr] = []
        while True:
            text = self.lexer.read_constructor_text()
            if text:
                content.append(text)
            if self.lexer.at_raw("</"):
                self.lexer.consume_raw("</")
                closing = self._raw_name()
                if closing != tag:
                    raise self.lexer.error(
                        f"constructor mismatch: <{tag}> closed by </{closing}>"
                    )
                self._raw_skip_space()
                self.lexer.consume_raw(">")
                return ElementCtor(tag, attributes, content)
            if self.lexer.at_raw("<"):
                content.append(self._parse_constructor())
                continue
            if self.lexer.at_raw("{"):
                self.lexer.consume_raw("{")
                content.append(self.parse_expr())
                self._expect_symbol("}")
                continue
            raise self.lexer.error(f"unterminated constructor <{tag}>")

    def _parse_ctor_attribute(self) -> AttributeCtor:
        name = self._raw_name()
        self._raw_skip_space()
        self.lexer.consume_raw("=")
        self._raw_skip_space()
        quote = '"' if self.lexer.at_raw('"') else "'"
        self.lexer.consume_raw(quote)
        parts: list[str | Expr] = []
        buffer: list[str] = []
        while True:
            if self.lexer.at_raw(quote):
                self.lexer.consume_raw(quote)
                break
            if self.lexer.at_raw("{"):
                if buffer:
                    parts.append("".join(buffer))
                    buffer = []
                self.lexer.consume_raw("{")
                parts.append(self.parse_expr())
                self._expect_symbol("}")
                continue
            char = self._raw_char()
            buffer.append(char)
        if buffer:
            parts.append("".join(buffer))
        return AttributeCtor(name, parts)

    # -- raw-mode helpers -----------------------------------------------------------

    def _raw_skip_space(self) -> None:
        while any(self.lexer.at_raw(c) for c in (" ", "\t", "\r", "\n")):
            self.lexer.consume_raw(self.lexer.text[self._raw_offset()])

    def _raw_offset(self) -> int:
        # at_raw/consume_raw clear the lookahead, so position is authoritative.
        return self.lexer.position

    def _raw_char(self) -> str:
        offset = self._raw_offset()
        if offset >= len(self.lexer.text):
            raise self.lexer.error("unexpected end of input in constructor")
        char = self.lexer.text[offset]
        self.lexer.position = offset + 1
        return char

    def _raw_name(self) -> str:
        self._raw_skip_space()
        offset = self._raw_offset()
        text = self.lexer.text
        end = offset
        while end < len(text) and (text[end].isalnum() or text[end] in "_-."):
            end += 1
        if end == offset:
            raise self.lexer.error("expected a name in constructor")
        self.lexer.position = end
        return text[offset:end]
