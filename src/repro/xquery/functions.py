"""Built-in function library.

The subset the twenty benchmark queries require: cardinalities (count, sum),
existence (empty, not), text (string, contains), cardinality assertions
(zero-or-one, exactly-one), value sets (distinct-values) and the document
accessor.  ``last()`` and ``position()`` are context functions handled by
the evaluator directly.
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.xquery.sequence import (
    NodeItem, Navigator, atomic_to_string, atomize, atomize_item,
    effective_boolean, to_number,
)


def _fn_count(args: list[list], navigator: Navigator) -> list:
    return [len(args[0])]


def _fn_sum(args: list[list], navigator: Navigator) -> list:
    values = atomize(args[0], navigator)
    return [sum(to_number(value) for value in values)] if values else [0]


def _fn_empty(args: list[list], navigator: Navigator) -> list:
    return [not args[0]]


def _fn_exists(args: list[list], navigator: Navigator) -> list:
    return [bool(args[0])]


def _fn_not(args: list[list], navigator: Navigator) -> list:
    return [not effective_boolean(args[0])]


def _fn_string(args: list[list], navigator: Navigator) -> list:
    sequence = args[0]
    if not sequence:
        return [""]
    return [atomic_to_string(atomize_item(sequence[0], navigator))]


def _fn_contains(args: list[list], navigator: Navigator) -> list:
    haystack = _fn_string([args[0]], navigator)[0]
    needle = _fn_string([args[1]], navigator)[0]
    return [needle in haystack]


def _fn_number(args: list[list], navigator: Navigator) -> list:
    sequence = args[0]
    if not sequence:
        return []
    return [to_number(atomize_item(sequence[0], navigator))]


def _fn_zero_or_one(args: list[list], navigator: Navigator) -> list:
    sequence = args[0]
    if len(sequence) > 1:
        raise QueryError(f"zero-or-one(): sequence has {len(sequence)} items")
    return list(sequence)


def _fn_exactly_one(args: list[list], navigator: Navigator) -> list:
    sequence = args[0]
    if len(sequence) != 1:
        raise QueryError(f"exactly-one(): sequence has {len(sequence)} items")
    return list(sequence)


def _fn_distinct_values(args: list[list], navigator: Navigator) -> list:
    seen: set = set()
    out: list = []
    for value in atomize(args[0], navigator):
        key = atomic_to_string(value)
        if key not in seen:
            seen.add(key)
            out.append(value)
    return out


def _fn_name(args: list[list], navigator: Navigator) -> list:
    sequence = args[0]
    if not sequence or not isinstance(sequence[0], NodeItem):
        return [""]
    return [navigator.tag(sequence[0].handle)]


def _fn_document(args: list[list], navigator: Navigator) -> list:
    """The benchmark's single-document convention: any document() call
    resolves to the loaded document's root parent (steps then select site)."""
    return [NodeItem(_DocumentRoot())]


class _DocumentRoot:
    """Sentinel handle: the conceptual parent of the root element."""

    __slots__ = ()


BUILTINS = {
    "count": (_fn_count, 1),
    "sum": (_fn_sum, 1),
    "empty": (_fn_empty, 1),
    "exists": (_fn_exists, 1),
    "not": (_fn_not, 1),
    "string": (_fn_string, 1),
    "contains": (_fn_contains, 2),
    "number": (_fn_number, 1),
    "zero-or-one": (_fn_zero_or_one, 1),
    "exactly-one": (_fn_exactly_one, 1),
    "distinct-values": (_fn_distinct_values, 1),
    "name": (_fn_name, 1),
    "document": (_fn_document, 1),
    "doc": (_fn_document, 1),
}


def call_builtin(name: str, args: list[list], navigator: Navigator) -> list:
    entry = BUILTINS.get(name)
    if entry is None:
        raise QueryError(f"unknown function {name}()")
    impl, arity = entry
    if len(args) != arity:
        raise QueryError(f"{name}() expects {arity} argument(s), got {len(args)}")
    return impl(args, navigator)
