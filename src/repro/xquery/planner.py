"""Per-system query compilation.

Compilation = parsing + static analysis + access-path resolution + join
planning + (for the relational systems) plan enumeration.  The work done
here is *real* and differs per architecture, which is what makes the
Table 2 compile/execute splits and System A's Q3 optimization pathology
reproducible rather than staged:

* System A touches one catalog entry per query but runs an exhaustive
  System-R style enumeration over its plan alternatives ("it spent too much
  of its time on optimization");
* System B resolves every path step against its per-path catalog — dozens
  to hundreds of metadata accesses per query ("thus spending [twice] as much
  time on query compilation");
* System C resolves against the DTD-derived schema and is limited to one
  correlated-join rewrite per query, reproducing its Q9 plan anomaly;
* System D resolves against the structural summary (cheap dictionary hits)
  and may use sorted join plans — the paper's "hand-optimized execution
  plans" for Q11/Q12;
* Systems E/F use heuristics only; System G executes naively.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.obs.trace import NULL_TRACER
from repro.storage.fragment_store import FragmentStore
from repro.storage.heap_store import HeapStore
from repro.storage.interface import Store
from repro.storage.schema_store import SchemaStore
from repro.storage.summary_store import SummaryStore
from repro.xquery.ast import (
    Arithmetic, BoolOp, Comparison, ContextItem, ElementCtor, Expr, FLWOR,
    ForClause, FunctionCall, IfExpr, LetClause, LetClause as _Let, Literal,
    Path, Quantified, Query, Step, Unary, VarRef, walk,
)
from repro.xquery.parser import parse_query


@dataclass(frozen=True, slots=True)
class SystemProfile:
    """Optimizer capabilities of one system (paper Section 7).

    The index flags gate *real* access structures: ``use_id_index`` a
    store-native ID lookup, ``use_value_index`` / ``use_sorted_index`` the
    secondary hash and sorted-numeric indexes of :mod:`repro.index`, and
    ``use_path_index`` a path extent — store-native where the mapping has
    one (Systems B/D), the secondary path index otherwise.
    """

    name: str
    optimizer: str = "heuristic"        # "cost-exhaustive" | "cost-greedy" | "heuristic" | "none"
    join_rewrite_depth: int = 99        # correlated lets decorrelated per query
    inequality_join: str = "nlj"        # "nlj" | "sorted"
    use_id_index: bool = True
    use_path_index: bool = False
    use_value_index: bool = False       # secondary hash index on typed values
    use_sorted_index: bool = False      # secondary sorted index for ranges


@dataclass(slots=True)
class PathPlan:
    """Access-path choice for one Path node.

    ``value_probe`` / ``range_probe`` resolve a step predicate through a
    secondary index: the extent of ``prefix`` is probed on ``accessor``
    (equality against ``probe_value``, or ``accessor-value op bound``) and
    evaluation resumes at the step after ``id_step``.  ``est_rows`` vs
    ``scan_rows`` records the cardinality comparison that won the probe —
    the scan-vs-probe cost choice, made from index statistics.
    """

    kind: str          # "steps" | "id_lookup" | "path_index" | "value_probe" | "range_probe"
    id_value: str | None = None
    id_step: int = 0
    prefix: tuple[str, ...] = ()
    prefix_len: int = 0
    source: str = "store"               # path_index backing: "store" | "index"
    accessor: tuple[str, ...] = ()
    probe_value: object = None          # value_probe: the literal key
    op: str = "="                       # range_probe: accessor-value OP bound
    bound: float = 0.0
    est_rows: int = -1
    scan_rows: int = -1


@dataclass(slots=True)
class RangePlan:
    """An index-resolved FLWOR ``where`` range (Q5's shape).

    Applies to ``for $v in /abs/path where $v/acc OP literal``: the sorted
    index on ``(path, accessor)`` yields exactly the qualifying bindings,
    so the evaluator iterates the probe result (restored to document
    order) and never evaluates the predicate.
    """

    var: str
    path: tuple[str, ...]
    accessor: tuple[str, ...]
    op: str                             # normalized: accessor-value OP bound
    bound: float
    est_rows: int = 0
    scan_rows: int = 0


@dataclass(slots=True)
class JoinPlan:
    """Decorrelation of a correlated let (hash or sorted probe).

    When ``index_kind`` is set, the build side is served by a secondary
    index over ``(index_path, index_accessor)`` instead of being
    materialized per query: ``"value"`` probes the hash index with each
    outer key, ``"sorted"`` bisects the sorted index with the outer bound
    (``index_scale`` folds a literal multiplier like Q11/Q12's ``5000 *``
    into the probe).  The evaluator falls back to the per-query build when
    the store's indexes have been dropped.
    """

    strategy: str                       # "hash" | "sorted"
    op: str                             # normalized: outer_key OP inner_key
    inner_var: str
    inner_base: Expr
    inner_key: Expr
    outer_key: Expr
    where_residual: Expr | None = None
    index_kind: str | None = None       # None | "value" | "sorted"
    index_path: tuple[str, ...] = ()
    index_accessor: tuple[str, ...] = ()
    index_scale: float = 1.0


@dataclass(slots=True, eq=False)
class CompiledQuery:
    """A query compiled for one (store, profile) pair.

    Reuse contract (the plan cache depends on it): after
    :func:`compile_query` returns, nothing mutates ``query``,
    ``path_plans``, ``join_plans`` or ``warnings`` — the evaluator
    treats them as read-only, keeping all per-execution state in its own
    interpreter.  A compiled plan may therefore be executed repeatedly,
    including from several threads at once, as long as the underlying
    store's read paths are thread-safe.  ``eq=False`` keeps instances
    hashable by identity so plans can key caches and sets directly.
    """

    query: Query
    store: Store
    profile: SystemProfile
    path_plans: dict[int, PathPlan] = field(default_factory=dict)
    join_plans: dict[int, JoinPlan] = field(default_factory=dict)
    range_plans: dict[int, RangePlan] = field(default_factory=dict)
    warnings: list[str] = field(default_factory=list)
    metadata_accesses: int = 0
    plans_considered: int = 0


def compile_query(text: str, store: Store, profile: SystemProfile,
                  tracer=NULL_TRACER) -> CompiledQuery:
    """Full compilation pipeline for one system."""
    if not tracer.enabled:
        query = parse_query(text)
        compiled = CompiledQuery(query, store, profile)
        _resolve_paths(compiled)
        _plan_joins(compiled)
        _plan_ranges(compiled)
        _enumerate_plans(compiled)
        _validate_tags(compiled)
        return compiled
    with tracer.span("plan", system=profile.name,
                     optimizer=profile.optimizer) as span:
        with tracer.span("plan.parse"):
            query = parse_query(text)
        compiled = CompiledQuery(query, store, profile)
        _resolve_paths(compiled)
        _plan_joins(compiled)
        _plan_ranges(compiled)
        _enumerate_plans(compiled)
        _validate_tags(compiled)
        _trace_plan_choices(compiled, tracer)
        span.set(plans_considered=compiled.plans_considered,
                 metadata_accesses=compiled.metadata_accesses,
                 warnings=len(compiled.warnings))
    return compiled


def _trace_plan_choices(compiled: CompiledQuery, tracer) -> None:
    """One zero-width child span per optimizer decision: the chosen
    access path / join / range, with the est-vs-scan numbers that won
    the probe-vs-scan cost comparison."""
    for plan in compiled.path_plans.values():
        if plan.kind == "steps":
            continue
        with tracer.span("plan.access_path", kind=plan.kind,
                         prefix="/".join(plan.prefix),
                         est_rows=plan.est_rows, scan_rows=plan.scan_rows):
            pass
    for join in compiled.join_plans.values():
        with tracer.span("plan.join", strategy=join.strategy, op=join.op,
                         index_kind=join.index_kind or "none"):
            pass
    for rng in compiled.range_plans.values():
        with tracer.span("plan.range", var=rng.var, op=rng.op,
                         bound=rng.bound, est_rows=rng.est_rows,
                         scan_rows=rng.scan_rows):
            pass


# -- access-path resolution ----------------------------------------------------------


def _absolute_prefix(path: Path) -> tuple[tuple[str, ...], int]:
    """Longest leading run of predicate-free child steps of an absolute path."""
    tags: list[str] = []
    for step in path.steps:
        if step.axis != "child" or step.predicates or step.name is None:
            break
        tags.append(step.name)
    return tuple(tags), len(tags)


def _is_absolute(path: Path) -> bool:
    if path.root is None:
        return True
    return isinstance(path.root, FunctionCall) and path.root.name in ("document", "doc")


def _resolve_paths(compiled: CompiledQuery) -> None:
    store = compiled.store
    profile = compiled.profile
    catalog = getattr(store, "catalog", None)
    before = catalog.metadata_accesses if catalog else 0

    for node in walk(compiled.query):
        if not isinstance(node, Path):
            continue
        plan = PathPlan("steps")
        # Per-architecture metadata resolution for every step.
        if isinstance(store, FragmentStore):
            _resolve_fragment_steps(store, node)
        elif isinstance(store, HeapStore):
            store.catalog.stats("nodes")  # one heap relation, one touch
        elif isinstance(store, SchemaStore):
            for step in node.steps:
                if step.name is not None:
                    store.catalog.stats(step.name)  # schema lookup per step
        elif isinstance(store, SummaryStore):
            prefix, _ = _absolute_prefix(node)
            if prefix:
                store.count_path(prefix)

        # ID lookup: .../tag[@id = "literal"] with an ID index.
        if profile.use_id_index and store.has_id_index():
            id_step = _find_id_predicate(node)
            if id_step is not None:
                index, value = id_step
                plan = PathPlan("id_lookup", id_value=value, id_step=index)
        # Secondary-index probes: an equality or range predicate on an
        # indexed field of the prefix extent, chosen over the scan when the
        # index's cardinality statistics say the probe reads fewer rows.
        if plan.kind == "steps" and (profile.use_value_index or profile.use_sorted_index):
            probe = _match_probe_plan(compiled, node)
            if probe is not None:
                plan = probe
        # Path index: absolute child-only prefixes, served by the store's
        # native extent when it has one, the secondary path index otherwise.
        if plan.kind == "steps" and profile.use_path_index and _is_absolute(node):
            prefix, length = _absolute_prefix(node)
            if length >= 2:
                if store.nodes_at_path(prefix) is not None:
                    plan = PathPlan("path_index", prefix=prefix, prefix_len=length)
                elif store.indexes is not None and store.indexes.covers_path(prefix):
                    plan = PathPlan("path_index", prefix=prefix, prefix_len=length,
                                    source="index")
        compiled.path_plans[id(node)] = plan

    if catalog:
        compiled.metadata_accesses += catalog.metadata_accesses - before


def _resolve_fragment_steps(store: FragmentStore, path: Path) -> None:
    """System B: resolve each step against the per-path catalog.

    Relative (variable-rooted) paths are resolved from scratch: the compiler
    has no path-set inference for the variable, so the first step requires a
    full catalog inspection — the dominant share of B's compile-time
    metadata traffic (Table 2: B spends twice A's share on compilation).
    """
    prefixes: list[tuple[str, ...]] | None
    if _is_absolute(path):
        prefixes = [()]
    else:
        prefixes = None  # unknown context: first named step scans the catalog
    for step in path.steps:
        if step.name is None or step.axis in ("attribute", "text", "self"):
            continue
        if prefixes is None:
            prefixes = store.paths_extending((), step.name)
            continue
        if step.axis == "child":
            new_prefixes = []
            for prefix in prefixes:
                candidate = prefix + (step.name,)
                if store.child_path_exists(prefix, step.name):
                    new_prefixes.append(candidate)
            prefixes = new_prefixes
        else:  # descendant: inspect the whole catalog
            new_prefixes = []
            for prefix in prefixes or [()]:
                new_prefixes.extend(store.paths_extending(prefix, step.name))
            prefixes = new_prefixes


def _find_id_predicate(path: Path) -> tuple[int, str] | None:
    for index, step in enumerate(path.steps):
        for predicate in step.predicates:
            if (
                isinstance(predicate, Comparison)
                and predicate.op == "="
                and isinstance(predicate.right, Literal)
                and isinstance(predicate.right.value, str)
                and _is_id_attribute(predicate.left)
            ):
                return index, predicate.right.value
            if (
                isinstance(predicate, Comparison)
                and predicate.op == "="
                and isinstance(predicate.left, Literal)
                and isinstance(predicate.left.value, str)
                and _is_id_attribute(predicate.right)
            ):
                return index, predicate.left.value
    return None


def _is_id_attribute(expr: Expr) -> bool:
    return (
        isinstance(expr, Path)
        and isinstance(expr.root, ContextItem)
        and len(expr.steps) == 1
        and expr.steps[0].axis == "attribute"
        and expr.steps[0].name == "id"
    )


# -- secondary-index probe matching ---------------------------------------------------


def _steps_accessor(steps: list[Step]) -> tuple[str, ...] | None:
    """An index accessor for a run of steps, or None when not index-shaped.

    Child steps must be named and predicate-free; an ``attribute`` or
    ``text`` step may only appear last.  The result mirrors
    :class:`repro.index.spec.FieldSpec` accessors (``('buyer', '@person')``,
    ``('price', 'text()')``).
    """
    accessor: list[str] = []
    for position, step in enumerate(steps):
        last = position == len(steps) - 1
        if step.predicates:
            return None
        if step.axis == "child" and step.name is not None:
            accessor.append(step.name)
        elif step.axis == "attribute" and step.name is not None and last:
            accessor.append("@" + step.name)
        elif step.axis == "text" and last:
            accessor.append("text()")
        else:
            return None
    return tuple(accessor) if accessor else None


def _context_accessor(expr: Expr) -> tuple[str, ...] | None:
    """Accessor of a predicate expression relative to the context item."""
    if not isinstance(expr, Path) or not isinstance(expr.root, ContextItem):
        return None
    return _steps_accessor(expr.steps)


_CARDINALITY_FNS = ("exactly-one", "zero-or-one", "one-or-more")


def _strip_cardinality(expr: Expr) -> tuple[Expr, tuple[str, ...]]:
    """Peel ``exactly-one()`` / ``zero-or-one()`` / ``one-or-more()``
    wrappers, remembering which were stripped: they raise at runtime when
    the sequence cardinality is wrong, so an index may only stand in for
    them when :func:`_cardinality_ok` proves they never would."""
    wrappers: list[str] = []
    while (isinstance(expr, FunctionCall)
           and expr.name in _CARDINALITY_FNS
           and len(expr.args) == 1):
        wrappers.append(expr.name)
        expr = expr.args[0]
    return expr, tuple(wrappers)


def _cardinality_ok(index, wrappers: tuple[str, ...], single_value: bool) -> bool:
    """Whether an index probe is observationally equal to evaluating the
    wrapped accessor on every extent node.

    ``wrappers`` raise where the probe would silently skip (a missing
    value) or silently enumerate (a duplicate value); ``single_value``
    marks expressions that consume only the first value (an arithmetic
    over the accessor) where the index would enumerate all of them.  The
    build-time raw-cardinality counters decide both from the actual
    document.
    """
    for name in wrappers:
        if name == "exactly-one" and (index.nodes_empty or index.nodes_multi):
            return False
        if name == "zero-or-one" and index.nodes_multi:
            return False
        if name == "one-or-more" and index.nodes_empty:
            return False
    if single_value and index.nodes_multi:
        return False
    return True


def _var_accessor(expr: Expr, var: str):
    """``(accessor, wrappers)`` of an expression relative to ``$var``."""
    expr, wrappers = _strip_cardinality(expr)
    if not isinstance(expr, Path):
        return None
    if not (isinstance(expr.root, VarRef) and expr.root.name == var):
        return None
    accessor = _steps_accessor(expr.steps)
    return None if accessor is None else (accessor, wrappers)


def _literal_number(value) -> float | None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    number = float(value)
    return None if number != number else number


def _predicate_key(predicate: Expr):
    """Match ``accessor OP literal`` (either side); returns the probe triple
    with the operator normalized so the accessor is on the left."""
    if not isinstance(predicate, Comparison):
        return None
    sides = (
        (predicate.left, predicate.right, predicate.op),
        (predicate.right, predicate.left, _flip(predicate.op)),
    )
    for expr, literal, op in sides:
        if not isinstance(literal, Literal):
            continue
        accessor = _context_accessor(expr)
        if accessor is None:
            continue
        if op == "=":
            return accessor, op, literal.value
        if op in ("<", "<=", ">", ">="):
            bound = _literal_number(literal.value)
            if bound is not None:
                return accessor, op, bound
    return None


def _match_probe_plan(compiled: CompiledQuery, path: Path) -> PathPlan | None:
    """A value/range probe for the first indexable step predicate, if the
    index statistics make the probe cheaper than scanning the extent."""
    store = compiled.store
    profile = compiled.profile
    indexes = store.indexes
    if indexes is None or not _is_absolute(path):
        return None
    prefix: list[str] = []
    for position, step in enumerate(path.steps):
        if step.axis != "child" or step.name is None:
            return None
        prefix.append(step.name)
        if not step.predicates:
            continue
        if len(step.predicates) != 1:
            return None                 # positional/conjunctive mixes: scan
        matched = _predicate_key(step.predicates[0])
        if matched is None:
            return None
        accessor, op, key = matched
        extent = tuple(prefix)
        if op == "=" and profile.use_value_index:
            index = indexes.value_field(extent, accessor)
            if index is None:
                return None
            est = max(1, round(index.avg_bucket))
            if est >= index.extent_size:
                return None             # probe reads no fewer rows than the scan
            return PathPlan(
                "value_probe", id_step=position, prefix=extent,
                prefix_len=len(extent), source="index", accessor=accessor,
                probe_value=key, est_rows=est, scan_rows=index.extent_size)
        if op != "=" and profile.use_sorted_index:
            index = indexes.sorted_field(extent, accessor)
            if index is None:
                return None
            rows = index.count(op, key)
            if index.extent_size and rows >= index.extent_size:
                return None             # unselective: the probe IS the scan
            return PathPlan(
                "range_probe", id_step=position, prefix=extent,
                prefix_len=len(extent), source="index", accessor=accessor,
                op=op, bound=key, est_rows=rows, scan_rows=index.extent_size)
        return None
    return None


# -- join planning --------------------------------------------------------------------


def _free_variables(expr: Expr) -> set[str]:
    return {node.name for node in walk(expr) if isinstance(node, VarRef)}


def _plan_joins(compiled: CompiledQuery) -> None:
    budget = [compiled.profile.join_rewrite_depth]
    _plan_joins_in(compiled, compiled.query.body, set(), budget)
    for function in compiled.query.functions.values():
        _plan_joins_in(compiled, function.body, set(), budget)


def _plan_joins_in(compiled: CompiledQuery, expr: Expr, loop_vars: set[str],
                   budget: list[int]) -> None:
    """Recursive walk tracking which variables vary per iteration."""
    if isinstance(expr, FLWOR):
        inner_loops = set(loop_vars)
        for clause in expr.clauses:
            if isinstance(clause, ForClause):
                _plan_joins_in(compiled, clause.sequence, inner_loops, budget)
                inner_loops.add(clause.var)
            else:
                join = _match_correlated_let(clause, inner_loops)
                if join is not None and budget[0] > 0:
                    if join.strategy == "sorted" and compiled.profile.inequality_join != "sorted":
                        join.strategy = "nlj"
                    if join.strategy != "nlj":
                        _attach_index_backing(compiled, join)
                        compiled.join_plans[id(clause)] = join
                        budget[0] -= 1
                _plan_joins_in(compiled, clause.expr, inner_loops, budget)
                # A let variable is loop-varying only when its defining
                # expression references a loop variable; invariant lets
                # (Q9's $ca/$ei) stay usable as join build sides.
                if _free_variables(clause.expr) & inner_loops:
                    inner_loops.add(clause.var)
        if expr.where is not None:
            _plan_joins_in(compiled, expr.where, inner_loops, budget)
        for spec in expr.order:
            _plan_joins_in(compiled, spec.key, inner_loops, budget)
        _plan_joins_in(compiled, expr.ret, inner_loops, budget)
        return
    for child in _direct_children(expr):
        _plan_joins_in(compiled, child, loop_vars, budget)


def _direct_children(expr: Expr) -> list[Expr]:
    if isinstance(expr, (Comparison, Arithmetic)):
        return [expr.left, expr.right]
    if isinstance(expr, Unary):
        return [expr.operand]
    if isinstance(expr, BoolOp):
        return list(expr.operands)
    if isinstance(expr, FunctionCall):
        return list(expr.args)
    if isinstance(expr, IfExpr):
        return [expr.condition, expr.then, expr.orelse]
    if isinstance(expr, Quantified):
        return [b.sequence for b in expr.bindings] + [expr.satisfies]
    if isinstance(expr, Path):
        children = [expr.root] if isinstance(expr.root, Expr) else []
        for step in expr.steps:
            children.extend(step.predicates)
        return children
    if isinstance(expr, ElementCtor):
        out: list[Expr] = []
        for attribute in expr.attributes:
            out.extend(p for p in attribute.parts if isinstance(p, Expr))
        out.extend(p for p in expr.content if isinstance(p, Expr))
        return out
    return []


def _match_correlated_let(clause: LetClause, loop_vars: set[str]) -> JoinPlan | None:
    """Recognise ``let $l := for $i in BASE where K_out(outer) OP K_in($i)
    return R($i)`` — the decorrelatable shape of Q8–Q12."""
    flwor = clause.expr
    if not isinstance(flwor, FLWOR) or flwor.order:
        return None
    if len(flwor.clauses) != 1 or not isinstance(flwor.clauses[0], ForClause):
        return None
    if flwor.where is None or not isinstance(flwor.where, Comparison):
        return None
    inner = flwor.clauses[0]
    comparison = flwor.where
    if comparison.op == "<<":
        return None
    # The base sequence must be loop-invariant.
    if _free_variables(inner.sequence) & loop_vars:
        return None
    # The return may reference the inner variable and invariants, but not
    # outer loop variables (those would defeat build-side reuse).
    if _free_variables(flwor.ret) & loop_vars:
        return None
    left_vars = _free_variables(comparison.left)
    right_vars = _free_variables(comparison.right)
    var = inner.var
    if var in left_vars and var not in right_vars and right_vars & loop_vars:
        inner_key, outer_key = comparison.left, comparison.right
        op = _flip(comparison.op)
    elif var in right_vars and var not in left_vars and left_vars & loop_vars:
        inner_key, outer_key = comparison.right, comparison.left
        op = comparison.op
    else:
        return None
    strategy = "hash" if op == "=" else "sorted"
    return JoinPlan(strategy, op, var, inner.sequence, inner_key, outer_key)


def _flip(op: str) -> str:
    return {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]


def _scaled_var_accessor(expr: Expr, var: str):
    """Match ``$var``-rooted accessors optionally scaled by a positive
    literal multiplier (Q11/Q12's ``5000 * exactly-one($i/text())``).

    Returns ``(accessor, scale, wrappers, single_value)``; an arithmetic
    consumes only the accessor's first value, so ``single_value`` is True
    whenever a scale (or any wrapper) is involved.
    """
    expr, outer = _strip_cardinality(expr)
    if isinstance(expr, Arithmetic) and expr.op == "*":
        for literal, operand in ((expr.left, expr.right), (expr.right, expr.left)):
            if isinstance(literal, Literal):
                scale = _literal_number(literal.value)
                matched = _var_accessor(operand, var)
                if scale is not None and scale > 0 and matched is not None:
                    accessor, wrappers = matched
                    return accessor, scale, outer + wrappers, True
        return None
    matched = _var_accessor(expr, var)
    if matched is None:
        return None
    accessor, wrappers = matched
    return accessor, 1.0, outer + wrappers, bool(outer + wrappers)


def _join_base_extent(join: JoinPlan) -> tuple[str, ...] | None:
    """The label path of the join's build side when it is a full absolute
    predicate-free extent (the precondition for index backing)."""
    base = join.inner_base
    if not isinstance(base, Path) or not _is_absolute(base):
        return None
    prefix, length = _absolute_prefix(base)
    return prefix if length == len(base.steps) else None


def _attach_index_backing(compiled: CompiledQuery, join: JoinPlan) -> None:
    """Serve the join's build side from a secondary index when one covers
    the inner key — a probe replaces the per-query build/sort."""
    store = compiled.store
    profile = compiled.profile
    indexes = store.indexes
    if indexes is None:
        return
    extent = _join_base_extent(join)
    if extent is None:
        return
    if join.strategy == "hash" and profile.use_value_index:
        matched = _var_accessor(join.inner_key, join.inner_var)
        if matched is None:
            return
        accessor, wrappers = matched
        index = indexes.value_field(extent, accessor)
        if index is None or (index.distinct_keys <= 1 and index.extent_size > 1):
            return                      # degenerate key: build wins
        if not _cardinality_ok(index, wrappers, bool(wrappers)):
            return
        join.index_kind = "value"
        join.index_path = extent
        join.index_accessor = accessor
    elif join.strategy == "sorted" and profile.use_sorted_index:
        scaled = _scaled_var_accessor(join.inner_key, join.inner_var)
        if scaled is None:
            return
        accessor, scale, wrappers, single_value = scaled
        index = indexes.sorted_field(extent, accessor)
        if index is None or not _cardinality_ok(index, wrappers, single_value):
            return
        join.index_kind = "sorted"
        join.index_path = extent
        join.index_accessor = accessor
        join.index_scale = scale


# -- range planning (FLWOR where-clauses answered from the sorted index) ----------------


def _plan_ranges(compiled: CompiledQuery) -> None:
    """Attach a :class:`RangePlan` to every ``for $v in /abs/path where
    $v/acc OP literal`` FLWOR the sorted index covers selectively."""
    profile = compiled.profile
    store = compiled.store
    indexes = store.indexes
    if not profile.use_sorted_index or indexes is None:
        return
    for node in walk(compiled.query):
        if not isinstance(node, FLWOR) or node.where is None or node.order:
            continue
        if len(node.clauses) != 1 or not isinstance(node.clauses[0], ForClause):
            continue
        clause = node.clauses[0]
        base = clause.sequence
        if not isinstance(base, Path) or not _is_absolute(base):
            continue
        prefix, length = _absolute_prefix(base)
        if length != len(base.steps):
            continue
        condition = node.where
        if not isinstance(condition, Comparison):
            continue
        matched = None
        for expr, literal, op in (
            (condition.left, condition.right, condition.op),
            (condition.right, condition.left, _flip(condition.op)),
        ):
            if not isinstance(literal, Literal) or op not in ("<", "<=", ">", ">="):
                continue
            bound = _literal_number(literal.value)
            var_match = _var_accessor(expr, clause.var)
            if bound is not None and var_match is not None:
                matched = (var_match[0], var_match[1], op, bound)
                break
        if matched is None:
            continue
        accessor, wrappers, op, bound = matched
        index = indexes.sorted_field(prefix, accessor)
        if index is None or not _cardinality_ok(index, wrappers, bool(wrappers)):
            continue
        rows = index.count(op, bound)
        if index.extent_size and rows >= index.extent_size:
            continue                    # every row qualifies: scan is no worse
        compiled.range_plans[id(node)] = RangePlan(
            var=clause.var, path=prefix, accessor=accessor,
            op=op, bound=bound, est_rows=rows, scan_rows=index.extent_size)


# -- plan enumeration (the cost-based systems' search space) ----------------------------


def _enumerate_plans(compiled: CompiledQuery) -> None:
    """Spend realistic optimization effort per optimizer class.

    The candidates are orderings of the query's path expressions (the units
    a 2002 translator would join); each candidate is costed from table
    statistics.  The exhaustive System-R enumeration of System A is the
    paper's "too much of its time on optimization"; greedy systems touch
    O(n^2) candidates; heuristic systems O(n).
    """
    paths = [node for node in walk(compiled.query) if isinstance(node, Path)]
    cardinalities = [max(1, 10 * (len(path.steps) + 1)) for path in paths]
    optimizer = compiled.profile.optimizer
    considered = 0
    if optimizer == "cost-exhaustive":
        units = min(len(paths), 7)
        best = float("inf")
        for order in itertools.permutations(range(units)):
            cost = 0.0
            running = 1.0
            for position in order:
                running *= cardinalities[position]
                cost += running
            considered += 1
            if cost < best:
                best = cost
    elif optimizer == "cost-greedy":
        remaining = list(range(len(paths)))
        while remaining:
            best_index = min(remaining, key=lambda i: cardinalities[i])
            considered += len(remaining)
            remaining.remove(best_index)
    elif optimizer == "heuristic":
        considered = len(paths)
    compiled.plans_considered = considered


# -- path validation (the paper's Section 7 usability wish) ------------------------------


def _validate_tags(compiled: CompiledQuery) -> None:
    known = compiled.store.known_tags()
    if known is None:
        return
    for node in walk(compiled.query):
        if isinstance(node, Path):
            for step in node.steps:
                if step.axis in ("child", "descendant") and step.name is not None:
                    if step.name not in known:
                        compiled.warnings.append(
                            f"path step '{step.name}' matches no element in the "
                            "database (possible typo)"
                        )
