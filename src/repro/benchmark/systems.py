"""The system registry: Systems A-G with their stores and optimizer profiles.

Architecture and optimizer assignments follow the paper's Section 7
descriptions; see DESIGN.md for the full substitution table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BenchmarkError
from repro.storage.dom_store import DomStore
from repro.storage.fragment_store import FragmentStore
from repro.storage.heap_store import HeapStore
from repro.storage.interface import Store
from repro.storage.schema_store import SchemaStore
from repro.storage.summary_store import SummaryStore
from repro.storage.tree_store import IndexedTreeStore, TreeStore
from repro.xquery.planner import SystemProfile


@dataclass(frozen=True, slots=True)
class SystemSpec:
    """One benchmark system: a store class plus an optimizer profile."""

    name: str
    store_class: type
    profile: SystemProfile
    mass_storage: bool
    description: str


SYSTEMS: dict[str, SystemSpec] = {
    "A": SystemSpec(
        "A", HeapStore,
        SystemProfile(
            name="A", optimizer="cost-exhaustive", join_rewrite_depth=2,
            inequality_join="nlj", use_id_index=True, use_path_index=False,
            use_value_index=True, use_sorted_index=True,
        ),
        mass_storage=True,
        description="relational, single generic heap relation, cost-based "
                    "optimizer with exhaustive enumeration",
    ),
    "B": SystemSpec(
        "B", FragmentStore,
        SystemProfile(
            name="B", optimizer="cost-greedy", join_rewrite_depth=2,
            inequality_join="nlj", use_id_index=True, use_path_index=True,
            use_value_index=True, use_sorted_index=True,
        ),
        mass_storage=True,
        description="relational, one table per distinct path, cost-based "
                    "optimizer; metadata-heavy compilation",
    ),
    "C": SystemSpec(
        "C", SchemaStore,
        SystemProfile(
            name="C", optimizer="cost-greedy", join_rewrite_depth=1,
            inequality_join="nlj", use_id_index=True, use_path_index=False,
            use_value_index=True, use_sorted_index=True,
        ),
        mass_storage=True,
        description="relational, DTD-derived inlined schema; at most one "
                    "join rewrite per query (the paper's Q9 anomaly)",
    ),
    "D": SystemSpec(
        "D", SummaryStore,
        SystemProfile(
            name="D", optimizer="heuristic", join_rewrite_depth=99,
            inequality_join="sorted", use_id_index=True, use_path_index=True,
            use_value_index=True, use_sorted_index=True,
        ),
        mass_storage=True,
        description="main memory, structural summary; hand-optimized "
                    "(sorted) plans for the value joins",
    ),
    "E": SystemSpec(
        "E", IndexedTreeStore,
        SystemProfile(
            name="E", optimizer="heuristic", join_rewrite_depth=99,
            inequality_join="nlj", use_id_index=False, use_path_index=True,
            use_value_index=True, use_sorted_index=True,
        ),
        mass_storage=True,
        description="main memory, inverted tag index + secondary value/"
                    "sorted/path indexes, heuristic optimizer",
    ),
    "F": SystemSpec(
        "F", TreeStore,
        SystemProfile(
            name="F", optimizer="heuristic", join_rewrite_depth=99,
            inequality_join="nlj", use_id_index=False, use_path_index=False,
        ),
        mass_storage=True,
        description="main memory, pure traversal, heuristic optimizer",
    ),
    "G": SystemSpec(
        "G", DomStore,
        SystemProfile(
            name="G", optimizer="none", join_rewrite_depth=0,
            inequality_join="nlj", use_id_index=False, use_path_index=False,
        ),
        mass_storage=False,
        description="embedded in-process DOM interpreter, no optimizer, "
                    "small-document capacity only",
    ),
}

#: The paper's "mass storage" systems (Table 1 / Table 3 population).
MASS_STORAGE_SYSTEMS = tuple(name for name, spec in SYSTEMS.items() if spec.mass_storage)


def parse_system_letters(letters: str) -> tuple[str, ...]:
    """``'bd'`` -> ``('B', 'D')``: uppercase, dedupe preserving order,
    reject unknown letters (shared by every CLI/bench entry point)."""
    systems = tuple(dict.fromkeys(letters.upper()))
    unknown = [s for s in systems if s not in SYSTEMS]
    if unknown:
        raise BenchmarkError(
            f"unknown system(s) {''.join(unknown)}; choose from A-G")
    return systems


def make_store(name: str) -> Store:
    """Instantiate a fresh store for a system letter."""
    try:
        return SYSTEMS[name].store_class()
    except KeyError:
        raise BenchmarkError(f"unknown system {name!r}; choose from A-G") from None


def load_stores(document: str, systems: tuple[str, ...]) -> tuple[dict, dict, dict]:
    """Bulkload one store per system letter (shared by every connection
    owner: the embedded Database and the QueryService).

    Returns ``(stores, load_reports, failed_loads)``; a system that fails
    to load (System G's capacity limit at scale, notably) lands in
    ``failed_loads`` with the failure reason instead of raising.
    """
    from repro.storage.bulkload import bulkload
    stores: dict[str, Store] = {}
    reports: dict = {}
    failed: dict[str, str] = {}
    for name in systems:
        store = make_store(name)
        try:
            reports[name] = bulkload(store, document, name)
        except Exception as exc:
            failed[name] = str(exc)
            continue
        stores[name] = store
    return stores, reports, failed


def get_profile(name: str) -> SystemProfile:
    try:
        return SYSTEMS[name].profile
    except KeyError:
        raise BenchmarkError(f"unknown system {name!r}; choose from A-G") from None
