"""The XMark benchmark kit: queries, systems, runner, reports.

This package is the reproduction of the paper's deliverable — "a workload
specification, a scalable benchmark document and a comprehensive set of
queries" (Section 1) — plus the measurement harness that regenerates the
evaluation artifacts (Tables 1–3, Figure 4).
"""

from repro.benchmark.queries import QUERIES, QuerySpec, query_text
from repro.benchmark.systems import SYSTEMS, SystemSpec, make_store
from repro.benchmark.runner import BenchmarkRunner, QueryTiming
from repro.benchmark.equivalence import check_equivalence, EquivalenceReport

__all__ = [
    "QUERIES", "QuerySpec", "query_text",
    "SYSTEMS", "SystemSpec", "make_store",
    "BenchmarkRunner", "QueryTiming",
    "check_equivalence", "EquivalenceReport",
]
