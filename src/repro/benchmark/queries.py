"""The twenty XMark queries (paper Section 6).

Texts follow the published query set, adapted to the implemented XQuery
subset (``document("auction.xml")`` and a bare absolute ``/`` are
equivalent under the benchmark's single-document convention).  Each query
carries the challenge group the paper assigns to it, so reports can show
what each number measures.

Q4's two person identifiers are scale-independent (``person2``/``person3``
exist at every scaling factor; the published queries hard-code ids for
scale 1.0 in the same way).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class QuerySpec:
    """One benchmark query: its number, challenge group and text."""

    number: int
    group: str
    description: str
    text: str

    @property
    def name(self) -> str:
        return f"Q{self.number}"


QUERIES: dict[int, QuerySpec] = {}


def _register(number: int, group: str, description: str, text: str) -> None:
    QUERIES[number] = QuerySpec(number, group, description, text.strip())


def query_text(number: int) -> str:
    """The XQuery source of query ``number`` (1-20)."""
    try:
        return QUERIES[number].text
    except KeyError:
        from repro.errors import BenchmarkError
        raise BenchmarkError(
            f"unknown query number {number}; benchmark queries are "
            f"1-{max(QUERIES)}") from None


_register(1, "Exact match", "Return the name of the person with ID 'person0'.", """
for $b in document("auction.xml")/site/people/person[@id = "person0"]
return $b/name/text()
""")

_register(2, "Ordered access", "Return the initial increases of all open auctions.", """
for $b in document("auction.xml")/site/open_auctions/open_auction
return <increase>{$b/bidder[1]/increase/text()}</increase>
""")

_register(3, "Ordered access", "Auctions whose current increase is at least "
           "twice as high as the initial increase.", """
for $b in document("auction.xml")/site/open_auctions/open_auction
where zero-or-one($b/bidder[1]/increase/text()) * 2 <= $b/bidder[last()]/increase/text()
return <increase first="{$b/bidder[1]/increase/text()}"
                 last="{$b/bidder[last()]/increase/text()}"/>
""")

_register(4, "Ordered access", "Auctions where person2 bid before person3 "
           "(document-order BEFORE predicate).", """
for $b in document("auction.xml")/site/open_auctions/open_auction
where some $pr1 in $b/bidder/personref[@person = "person2"],
           $pr2 in $b/bidder/personref[@person = "person3"]
      satisfies $pr1 << $pr2
return <history>{$b/reserve/text()}</history>
""")

_register(5, "Casting", "How many sold items cost more than 40?", """
count(for $i in document("auction.xml")/site/closed_auctions/closed_auction
      where $i/price/text() >= 40
      return $i/price)
""")

_register(6, "Regular path expressions", "How many items are listed on all continents?", """
for $b in document("auction.xml")/site/regions
return count($b//item)
""")

_register(7, "Regular path expressions", "How many pieces of prose are in our database?", """
for $p in document("auction.xml")/site
return count($p//description) + count($p//annotation) + count($p//emailaddress)
""")

_register(8, "Chasing references", "Names of persons and the number of items they bought.", """
for $p in document("auction.xml")/site/people/person
let $a := for $t in document("auction.xml")/site/closed_auctions/closed_auction
          where $t/buyer/@person = $p/@id
          return $t
return <item person="{$p/name/text()}">{count($a)}</item>
""")

_register(9, "Chasing references", "Names of persons and the names of the "
           "items they bought in Europe.", """
let $ca := document("auction.xml")/site/closed_auctions/closed_auction
let $ei := document("auction.xml")/site/regions/europe/item
for $p in document("auction.xml")/site/people/person
let $a := for $t in $ca
          where $p/@id = $t/buyer/@person
          return let $n := for $t2 in $ei
                           where $t/itemref/@item = $t2/@id
                           return $t2
                 return <item>{$n/name/text()}</item>
return <person name="{$p/name/text()}">{$a}</person>
""")

_register(10, "Construction of complex results", "Group persons by interest; "
           "French markup in the result.", """
for $i in distinct-values(document("auction.xml")/site/people/person/profile/interest/@category)
let $p := for $t in document("auction.xml")/site/people/person
          where $t/profile/interest/@category = $i
          return <personne>
                   <statistiques>
                     <sexe>{$t/profile/gender/text()}</sexe>
                     <age>{$t/profile/age/text()}</age>
                     <education>{$t/profile/education/text()}</education>
                     <revenu>{$t/profile/@income}</revenu>
                   </statistiques>
                   <coordonnees>
                     <nom>{$t/name/text()}</nom>
                     <rue>{$t/address/street/text()}</rue>
                     <ville>{$t/address/city/text()}</ville>
                     <pays>{$t/address/country/text()}</pays>
                     <reseau>
                       <courrier>{$t/emailaddress/text()}</courrier>
                       <pagePerso>{$t/homepage/text()}</pagePerso>
                     </reseau>
                   </coordonnees>
                   <cartePaiement>{$t/creditcard/text()}</cartePaiement>
                 </personne>
return <categorie>{<id>{$i}</id>}{$p}</categorie>
""")

_register(11, "Joins on values", "For each person, the number of items currently "
           "on sale whose price does not exceed 0.02% of the person's income.", """
for $p in document("auction.xml")/site/people/person
let $l := for $i in document("auction.xml")/site/open_auctions/open_auction/initial
          where $p/profile/@income > 5000 * exactly-one($i/text())
          return $i
return <items name="{$p/name/text()}">{count($l)}</items>
""")

_register(12, "Joins on values", "As Q11, but only for persons with income above 50000.", """
for $p in document("auction.xml")/site/people/person
let $l := for $i in document("auction.xml")/site/open_auctions/open_auction/initial
          where $p/profile/@income > 5000 * exactly-one($i/text())
          return $i
where $p/profile/@income > 50000
return <items person="{$p/name/text()}">{count($l)}</items>
""")

_register(13, "Reconstruction", "Names of items registered in Australia, with descriptions.", """
for $i in document("auction.xml")/site/regions/australia/item
return <item name="{$i/name/text()}">{$i/description}</item>
""")

_register(14, "Full text", "Names of all items whose description contains the word 'gold'.", """
for $i in document("auction.xml")/site//item
where contains(string(exactly-one($i/description)), "gold")
return $i/name/text()
""")

_register(15, "Path traversals", "Keywords in emphasis in annotations of closed auctions.", """
for $a in document("auction.xml")/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword/text()
return <text>{$a}</text>
""")

_register(16, "Path traversals", "Sellers of auctions that have one or more "
           "keywords in emphasis (confer Q15).", """
for $a in document("auction.xml")/site/closed_auctions/closed_auction
where not(empty($a/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword/text()))
return <person id="{$a/seller/@person}"/>
""")

_register(17, "Missing elements", "Which persons don't have a homepage?", """
for $p in document("auction.xml")/site/people/person
where empty($p/homepage/text())
return <person name="{$p/name/text()}"/>
""")

_register(18, "Function application", "Convert the reserves of all open auctions "
           "to another currency (UDF).", """
declare function local:convert($v) { 2.20371 * $v };
for $i in document("auction.xml")/site/open_auctions/open_auction
return local:convert(zero-or-one($i/reserve/text()))
""")

_register(19, "Sorting", "Alphabetically ordered list of all items with their location.", """
for $b in document("auction.xml")/site/regions//item
let $k := $b/name/text()
order by zero-or-one($b/location/text())
return <item name="{$k}">{$b/location/text()}</item>
""")

_register(20, "Aggregation", "Group customers by income; output the cardinality "
           "of each group.", """
<result>
 <preferred>{count(document("auction.xml")/site/people/person/profile[@income >= 100000])}</preferred>
 <standard>{count(document("auction.xml")/site/people/person/profile[@income < 100000 and @income >= 30000])}</standard>
 <challenge>{count(document("auction.xml")/site/people/person/profile[@income < 30000])}</challenge>
 <na>{count(for $p in document("auction.xml")/site/people/person
            where empty($p/profile/@income)
            return $p)}</na>
</result>
""")

#: Query numbers reported in the paper's Table 3.
TABLE3_QUERIES = (1, 2, 3, 5, 6, 7, 8, 9, 10, 11, 12, 17, 20)
