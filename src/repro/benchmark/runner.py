"""The benchmark runner: per-system compile/execute timing.

Reproduces the paper's measurement protocol: queries are compiled and
executed per system, with the compilation phase (parse + metadata
resolution + optimization) timed separately from execution, in both wall
and CPU time — the split behind Table 2.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.benchmark.queries import QUERIES
from repro.benchmark.systems import SYSTEMS, get_profile, make_store
from repro.errors import BenchmarkError
from repro.storage.bulkload import BulkloadReport, bulkload
from repro.storage.interface import Store
from repro.xquery.evaluator import QueryResult, evaluate
from repro.xquery.planner import CompiledQuery, compile_query


@dataclass(frozen=True, slots=True)
class QueryTiming:
    """Timing of one (query, system) execution."""

    system: str
    query: int
    compile_seconds: float
    compile_cpu_seconds: float
    execute_seconds: float
    execute_cpu_seconds: float
    result_size: int
    metadata_accesses: int
    plans_considered: int

    @property
    def total_seconds(self) -> float:
        return self.compile_seconds + self.execute_seconds

    @property
    def total_ms(self) -> float:
        return self.total_seconds * 1000.0

    @property
    def compile_share(self) -> float:
        """Fraction of total time spent compiling (Table 2's column)."""
        total = self.total_seconds
        return self.compile_seconds / total if total > 0 else 0.0


class BenchmarkRunner:
    """Loads a document into the chosen systems and runs queries on them."""

    def __init__(self, document: str, systems: tuple[str, ...] = tuple(SYSTEMS)) -> None:
        self.document = document
        self.stores: dict[str, Store] = {}
        self.load_reports: dict[str, BulkloadReport] = {}
        self.failed_loads: dict[str, str] = {}
        for name in systems:
            store = make_store(name)
            try:
                self.load_reports[name] = bulkload(store, document, name)
            except Exception as exc:  # the paper's System G fails at scale 1.0
                self.failed_loads[name] = str(exc)
                continue
            self.stores[name] = store

    def store(self, system: str) -> Store:
        try:
            return self.stores[system]
        except KeyError:
            reason = self.failed_loads.get(system, "not loaded")
            raise BenchmarkError(f"system {system} unavailable: {reason}") from None

    def compile(self, system: str, query: int) -> CompiledQuery:
        return compile_query(QUERIES[query].text, self.store(system), get_profile(system))

    def run(self, system: str, query: int) -> tuple[QueryTiming, QueryResult]:
        """Compile and execute one query, timing both phases."""
        store = self.store(system)
        text = QUERIES[query].text
        profile = get_profile(system)

        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        compiled = compile_query(text, store, profile)
        cpu1 = time.process_time()
        wall1 = time.perf_counter()
        result = evaluate(compiled)
        cpu2 = time.process_time()
        wall2 = time.perf_counter()

        timing = QueryTiming(
            system=system,
            query=query,
            compile_seconds=wall1 - wall0,
            compile_cpu_seconds=cpu1 - cpu0,
            execute_seconds=wall2 - wall1,
            execute_cpu_seconds=cpu2 - cpu1,
            result_size=len(result),
            metadata_accesses=compiled.metadata_accesses,
            plans_considered=compiled.plans_considered,
        )
        return timing, result

    def run_matrix(self, systems: tuple[str, ...], queries: tuple[int, ...],
                   repeats: int = 1) -> dict[tuple[str, int], QueryTiming]:
        """Run a (system x query) grid; keep the best of ``repeats`` runs."""
        grid: dict[tuple[str, int], QueryTiming] = {}
        for system in systems:
            if system not in self.stores:
                continue
            for query in queries:
                best: QueryTiming | None = None
                for _ in range(repeats):
                    timing, _result = self.run(system, query)
                    if best is None or timing.total_seconds < best.total_seconds:
                        best = timing
                grid[(system, query)] = best
        return grid
