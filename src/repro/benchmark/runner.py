"""The benchmark runner: per-system compile/execute timing.

Reproduces the paper's measurement protocol: queries are compiled and
executed per system, with the compilation phase (parse + metadata
resolution + optimization) timed separately from execution, in both wall
and CPU time — the split behind Table 2.

Since the embedded-database facade landed, this class is a thin shim over
:func:`repro.connect`: the facade owns loading and execution, the runner
keeps the paper's measurement protocol and its historical attribute
surface (``stores`` / ``load_reports`` / ``failed_loads``).  New code
should use ``repro.connect()`` directly — see docs/API.md for the
migration table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchmark.queries import query_text
from repro.benchmark.systems import SYSTEMS, get_profile
from repro.errors import BenchmarkError
from repro.storage.interface import Store
from repro.xquery.evaluator import QueryResult
from repro.xquery.planner import CompiledQuery, compile_query


@dataclass(frozen=True, slots=True)
class QueryTiming:
    """Timing of one (query, system) execution."""

    system: str
    query: int
    compile_seconds: float
    compile_cpu_seconds: float
    execute_seconds: float
    execute_cpu_seconds: float
    result_size: int
    metadata_accesses: int
    plans_considered: int

    @property
    def total_seconds(self) -> float:
        return self.compile_seconds + self.execute_seconds

    @property
    def total_ms(self) -> float:
        return self.total_seconds * 1000.0

    @property
    def compile_share(self) -> float:
        """Fraction of total time spent compiling (Table 2's column)."""
        total = self.total_seconds
        return self.compile_seconds / total if total > 0 else 0.0


class BenchmarkRunner:
    """Loads a document into the chosen systems and runs queries on them.

    Deprecated shim: rebased on :class:`repro.db.Database` (a direct
    connection), kept because the paper-table harness and a large test
    surface are written against it.
    """

    def __init__(self, document: str, systems: tuple[str, ...] = tuple(SYSTEMS)) -> None:
        from repro.db import connect
        self.database = connect(document, systems=systems)
        self.document = document
        self.stores = self.database.stores
        self.load_reports = self.database.load_reports
        self.failed_loads = self.database.failed_loads
        self._session = self.database.session()

    def store(self, system: str) -> Store:
        try:
            return self.stores[system]
        except KeyError:
            reason = self.failed_loads.get(system, "not loaded")
            raise BenchmarkError(f"system {system} unavailable: {reason}") from None

    def compile(self, system: str, query: int) -> CompiledQuery:
        return compile_query(query_text(query), self.store(system),
                             get_profile(system))

    def run(self, system: str, query: int) -> tuple[QueryTiming, QueryResult]:
        """Compile and execute one query, timing both phases."""
        self.store(system)  # fail fast with the historical message
        cursor = self._session.execute(query, system=system, stream=False)
        result = cursor.result()
        timing = QueryTiming(
            system=system,
            query=query,
            compile_seconds=cursor.compile_seconds,
            compile_cpu_seconds=cursor.compile_cpu_seconds,
            execute_seconds=cursor.execute_seconds,
            execute_cpu_seconds=cursor.execute_cpu_seconds,
            result_size=len(result),
            metadata_accesses=cursor.metadata_accesses,
            plans_considered=cursor.plans_considered,
        )
        return timing, result

    def run_matrix(self, systems: tuple[str, ...], queries: tuple[int, ...],
                   repeats: int = 1) -> dict[tuple[str, int], QueryTiming]:
        """Run a (system x query) grid; keep the best of ``repeats`` runs."""
        grid: dict[tuple[str, int], QueryTiming] = {}
        for system in systems:
            if system not in self.stores:
                continue
            for query in queries:
                best: QueryTiming | None = None
                for _ in range(repeats):
                    timing, _result = self.run(system, query)
                    if best is None or timing.total_seconds < best.total_seconds:
                        best = timing
                grid[(system, query)] = best
        return grid
