"""Cross-system result equivalence.

The paper (Section 1) singles out output equivalence as an open problem:
different stores may serialize the same logical result differently.  The
benchmark harness settles it pragmatically: results are converted to
canonical XML (sorted attributes, coalesced text, optional sibling
ordering) and compared pairwise, with one reference system designated the
oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BenchmarkError
from repro.xquery.evaluator import QueryResult


@dataclass(slots=True)
class EquivalenceReport:
    """Pairwise agreement of several systems on one query."""

    query: int
    reference: str
    agreeing: list[str] = field(default_factory=list)
    disagreeing: dict[str, str] = field(default_factory=dict)  # system -> diff hint

    @property
    def ok(self) -> bool:
        return not self.disagreeing


def check_equivalence(
    query: int,
    results: dict[str, QueryResult],
    reference: str | None = None,
    ordered: bool = True,
) -> EquivalenceReport:
    """Compare every system's result against a reference system's.

    ``ordered=False`` ignores result order (for queries whose order the
    language leaves unspecified).
    """
    if not results:
        raise BenchmarkError("no results to compare")
    reference = reference or sorted(results)[0]
    report = EquivalenceReport(query, reference)
    expected = results[reference].canonical(ordered=ordered)
    for system in sorted(results):
        if system == reference:
            continue
        actual = results[system].canonical(ordered=ordered)
        if actual == expected:
            report.agreeing.append(system)
        else:
            report.disagreeing[system] = _diff_hint(expected, actual)
    return report


def _diff_hint(expected: str, actual: str) -> str:
    """A short human-readable description of the first divergence."""
    if len(expected) != len(actual):
        hint = f"length {len(actual)} vs {len(expected)}"
    else:
        hint = "same length"
    limit = min(len(expected), len(actual))
    for index in range(limit):
        if expected[index] != actual[index]:
            lo = max(0, index - 20)
            return (f"{hint}; first diff at {index}: "
                    f"...{actual[lo:index + 20]!r} vs ...{expected[lo:index + 20]!r}")
    return f"{hint}; one is a prefix of the other"
