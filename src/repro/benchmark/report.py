"""Report formatters that print the paper's tables and figure series."""

from __future__ import annotations

from repro.benchmark.queries import QUERIES, TABLE3_QUERIES
from repro.benchmark.runner import QueryTiming
from repro.storage.bulkload import BulkloadReport, ScanReport


def _rule(widths: list[int]) -> str:
    return "-+-".join("-" * w for w in widths)


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Plain-text table with aligned columns."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        _rule(widths),
    ]
    for row in rows:
        lines.append(" | ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def table1_report(loads: dict[str, BulkloadReport], scan: ScanReport) -> str:
    """Table 1: database sizes and bulkload times (+ the scan baseline)."""
    rows = []
    for system in sorted(loads):
        report = loads[system]
        rows.append([
            system,
            f"{report.database_bytes / 1e6:.1f} MB",
            f"{report.seconds:.2f} s",
            f"{report.size_ratio:.2f}x",
        ])
    headers = ["System", "Size", "Bulkload time", "Size/document"]
    baseline = (f"\n(parser scan baseline: {scan.seconds:.2f} s for "
                f"{scan.document_bytes / 1e6:.1f} MB, {scan.events} events)")
    return format_table(headers, rows) + baseline


def table2_report(timings: dict[tuple[str, int], QueryTiming]) -> str:
    """Table 2: compilation vs execution splits for Q1/Q2 on A, B, C."""
    headers = ["Query", "System", "Compile", "Execute", "Compile share",
               "Metadata accesses", "Plans considered"]
    rows = []
    for query in (1, 2):
        for system in ("A", "B", "C"):
            timing = timings.get((system, query))
            if timing is None:
                continue
            rows.append([
                f"Q{query}", system,
                f"{timing.compile_seconds * 1000:.2f} ms",
                f"{timing.execute_seconds * 1000:.2f} ms",
                f"{timing.compile_share * 100:.0f}%",
                str(timing.metadata_accesses),
                str(timing.plans_considered),
            ])
    return format_table(headers, rows)


def table3_report(timings: dict[tuple[str, int], QueryTiming],
                  systems: tuple[str, ...] = ("A", "B", "C", "D", "E", "F"),
                  queries: tuple[int, ...] = TABLE3_QUERIES) -> str:
    """Table 3: per-query latency (ms) for the mass-storage systems."""
    headers = ["Query"] + [f"System {s}" for s in systems]
    rows = []
    for query in queries:
        row = [f"Q{query}"]
        for system in systems:
            timing = timings.get((system, query))
            row.append(f"{timing.total_ms:.1f}" if timing else "-")
        rows.append(row)
    return format_table(headers, rows)


def figure4_report(series: dict[float, dict[int, QueryTiming]]) -> str:
    """Figure 4: the embedded System G over all twenty queries per scale."""
    scales = sorted(series)
    headers = ["Query"] + [f"f={scale:g}" for scale in scales]
    rows = []
    for query in sorted(QUERIES):
        row = [f"Q{query}"]
        for scale in scales:
            timing = series[scale].get(query)
            row.append(f"{timing.total_ms:.1f} ms" if timing else "failed")
        rows.append(row)
    return format_table(headers, rows)


def query_group_legend() -> str:
    """The challenge group of every query (paper Section 6 headings)."""
    rows = [[spec.name, spec.group, spec.description] for spec in QUERIES.values()]
    return format_table(["Query", "Group", "Challenge"], rows)
