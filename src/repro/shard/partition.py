"""Schema-aware horizontal partitioning of the auction document.

The auction site decomposes into independent top-level extents — six world
regions of items, people, open auctions, closed auctions, plus the small
category dimension — and that structure is the partitioning scheme:

* **items by region** — a whole region's ``item`` extent lives on one
  shard (``region rank mod N``).  Locality beats balance here on purpose:
  region-rooted path queries (Q13's ``/site/regions/australia/item``)
  become single-shard, and the skew the real region sizes produce
  (namerica holds ~46% of all items) is visible in the partition summary
  rather than hidden by hashing.
* **people hash-partitioned by id** — ``crc32(@id) mod N``.
* **auctions hash-partitioned by the id of the item they reference** —
  both ``open_auction`` and ``closed_auction`` route on
  ``itemref/@item``.  This is the referential co-location rule: an
  auction's lineage is the item it sells, so a ``close_auction`` cascade
  (remove the open auction, insert the closed one, same ``itemref``)
  stays on one shard, and a ``delete_item`` cascade finds every
  referencing auction — open and closed — on one shard.  ``place_bid``
  is shard-local trivially (it touches a single open auction).
  Watch-removal cascades cross shards: watches live under their person.
* **categories and catgraph on shard 0** — small reference dimension; no
  update operation touches it, every shard document keeps (possibly
  empty) container elements so the fragments stay schema-shaped.

Each shard document is itself a complete ``site`` document over its
subset of entities, so any of the seven store architectures can bulkload
one unchanged.  Alongside the fragments, the partition records the
*global order seeds*: for every extent, the original child positions of
each shard's entities.  The sharded store rebuilds exact document order
from these — merged results are bit-identical to the unsharded document,
not merely deterministic.

Entities are assumed to be the only children of their containers (no
inter-entity text), which holds for every generated auction document.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.errors import ShardError
from repro.schema.auction import REGIONS
from repro.xmlio.dom import Element
from repro.xmlio.parser import parse
from repro.xmlio.serialize import serialize

#: Routing policies: ``home`` pins the extent to one shard, ``hash-id``
#: hashes the entity's own @id, ``hash-item`` hashes the referenced item.
HOME = "home"
HASH_ID = "hash-id"
HASH_ITEM = "hash-item"


@dataclass(frozen=True, slots=True)
class ExtentSpec:
    """One partitioned extent: its container path, entity tag, policy."""

    path: tuple[str, ...]
    entity_tag: str
    policy: str
    home_region: str | None = None      # HOME extents under regions

    def home_shard(self, shard_count: int) -> int:
        if self.home_region is not None:
            return REGIONS.index(self.home_region) % shard_count
        return 0


#: Every partitioned extent, in document order of their containers.
EXTENT_SPECS: tuple[ExtentSpec, ...] = (
    *(ExtentSpec(("site", "regions", region), "item", HOME, region)
      for region in REGIONS),
    ExtentSpec(("site", "categories"), "category", HOME),
    ExtentSpec(("site", "catgraph"), "edge", HOME),
    ExtentSpec(("site", "people"), "person", HASH_ID),
    ExtentSpec(("site", "open_auctions"), "open_auction", HASH_ITEM),
    ExtentSpec(("site", "closed_auctions"), "closed_auction", HASH_ITEM),
)


def shard_of_key(key: str, shard_count: int) -> int:
    """Deterministic hash placement (crc32 — stable across processes)."""
    return zlib.crc32(key.encode("utf-8")) % shard_count


def route_entity(spec: ExtentSpec, element: Element, shard_count: int) -> int:
    """The shard one entity element belongs on, per its extent's policy."""
    if spec.policy == HOME:
        return spec.home_shard(shard_count)
    if spec.policy == HASH_ID:
        return shard_of_key(element.attributes.get("id", ""), shard_count)
    itemref = element.find("itemref")
    key = itemref.attributes.get("item", "") if itemref is not None else \
        element.attributes.get("id", "")
    return shard_of_key(key, shard_count)


@dataclass(slots=True)
class ExtentAssignment:
    """Where one extent's entities went, with their global order seeds."""

    spec: ExtentSpec
    #: Per shard: the original container-child positions of its entities,
    #: ascending (the shard fragment preserves relative order).
    seqs: list[list[int]]
    total: int = 0


@dataclass(slots=True)
class DocumentPartition:
    """N loadable shard fragments plus the metadata to reassemble order."""

    shard_count: int
    shard_texts: list[str]
    extents: dict[tuple[str, ...], ExtentAssignment]
    #: Entity @id -> (shard, extent path), for routed lookups.
    id_map: dict[str, tuple[int, tuple[str, ...]]] = field(default_factory=dict)

    def summary(self) -> dict:
        """Per-shard entity counts and fragment sizes (reports, CLI)."""
        entities = [
            {assignment.spec.entity_tag: 0 for assignment in self.extents.values()}
            for _ in range(self.shard_count)
        ]
        for assignment in self.extents.values():
            for rank, seqs in enumerate(assignment.seqs):
                entities[rank][assignment.spec.entity_tag] += len(seqs)
        return {
            "shards": self.shard_count,
            "fragment_bytes": [len(text) for text in self.shard_texts],
            "entities": entities,
        }


def restore_partition(fragments: list[str],
                      extent_seqs: dict[str, list[list[int]]],
                      id_map: dict[str, list]) -> DocumentPartition:
    """Reassemble a :class:`DocumentPartition` from checkpointed state.

    The inverse of what a sharded snapshot persists
    (:func:`repro.storage.wal.snapshot.sharded_snapshot`): fragment
    texts, per-extent global-order seeds keyed by ``"/".join(path)``,
    and the id routing map with list-encoded values.  Used by crash
    recovery to reload the exact pre-crash partition — same shard
    placement, same order seeds — without re-partitioning.
    """
    shard_count = len(fragments)
    extents: dict[tuple[str, ...], ExtentAssignment] = {}
    for spec in EXTENT_SPECS:
        seqs = extent_seqs.get("/".join(spec.path))
        if seqs is None or len(seqs) != shard_count:
            raise ShardError(
                f"checkpointed partition lacks seeds for /{'/'.join(spec.path)}")
        seqs = [list(shard_seqs) for shard_seqs in seqs]
        extents[spec.path] = ExtentAssignment(
            spec, seqs, total=sum(len(shard_seqs) for shard_seqs in seqs))
    return DocumentPartition(
        shard_count=shard_count,
        shard_texts=list(fragments),
        extents=extents,
        id_map={identifier: (entry[0], tuple(entry[1].split("/")))
                for identifier, entry in id_map.items()},
    )


class DocumentPartitioner:
    """Split one auction document into ``shard_count`` loadable fragments."""

    def __init__(self, shard_count: int) -> None:
        if shard_count < 1:
            raise ShardError(f"shard_count must be >= 1, got {shard_count}")
        self.shard_count = shard_count

    def partition(self, text: str) -> DocumentPartition:
        root = parse(text).root
        if root is None or root.tag != "site":
            raise ShardError("expected an auction document rooted at <site>")

        shard_sites = [Element("site", dict(root.attributes))
                       for _ in range(self.shard_count)]
        containers: dict[tuple[str, ...], list[Element]] = {}
        for site in shard_sites:
            regions = site.append(Element("regions"))
            for region in REGIONS:
                containers.setdefault(("site", "regions", region), []).append(
                    regions.append(Element(region)))
            for tag in ("categories", "catgraph", "people",
                        "open_auctions", "closed_auctions"):
                containers.setdefault(("site", tag), []).append(
                    site.append(Element(tag)))

        extents: dict[tuple[str, ...], ExtentAssignment] = {}
        id_map: dict[str, tuple[int, tuple[str, ...]]] = {}
        for spec in EXTENT_SPECS:
            source = self._resolve(root, spec.path)
            assignment = ExtentAssignment(
                spec, [[] for _ in range(self.shard_count)])
            for position, entity in enumerate(source.child_elements()):
                rank = route_entity(spec, entity, self.shard_count)
                containers[spec.path][rank].append(entity)
                assignment.seqs[rank].append(position)
                assignment.total += 1
                identifier = entity.attributes.get("id")
                if identifier:
                    id_map[identifier] = (rank, spec.path)
            extents[spec.path] = assignment

        return DocumentPartition(
            shard_count=self.shard_count,
            shard_texts=[serialize(site) for site in shard_sites],
            extents=extents,
            id_map=id_map,
        )

    @staticmethod
    def _resolve(root: Element, path: tuple[str, ...]) -> Element:
        node = root
        for tag in path[1:]:
            child = node.find(tag)
            if child is None:
                raise ShardError(
                    f"document has no /{'/'.join(path)} container")
            node = child
        return node
