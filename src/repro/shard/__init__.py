"""Sharded document subsystem: partitioning, the sharded store, and the
parallel scatter-gather execution layer.  See docs/SHARDING.md."""

from repro.shard.partition import (
    DocumentPartition, DocumentPartitioner, shard_of_key,
)
from repro.shard.store import DEFAULT_BACKEND, ShardedStore

__all__ = [
    "DEFAULT_BACKEND",
    "DocumentPartition",
    "DocumentPartitioner",
    "ShardedStore",
    "shard_of_key",
]
