"""The sharded document store: N backend stores behind one ``Store``.

:class:`ShardedStore` presents the partitioned document through the
exact navigation/mutation interface every other architecture implements,
so the whole existing stack — planner, evaluator, update engine, index
builder and maintenance, query service — runs on it unchanged.  That is
the subsystem's correctness anchor: the compatibility path is the oracle
the scatter-gather executor (:mod:`repro.shard.scatter`) is checked
against, and the update engine's full logical bookkeeping (global
secondary indexes, digest chain, change footprints) applies to the
sharded deployment for free.

Handle model
============

* The root ``site``, the ``regions`` container, and every extent
  container (six regions, categories, catgraph, people, open_auctions,
  closed_auctions) are **virtual nodes** — singletons owned by this
  store; the per-shard copies of those containers are never exposed.
* Every other node is a ``(shard_rank, native_handle)`` pair wrapping
  the owning backend store's handle — hashable because native handles
  are.

Document order
==============

``doc_position`` keys are shard-rank-free: an entity's key is its
extent's rank tuple plus the entity's **global sequence number** (seeded
from the original document's child positions by the partitioner,
extended append-only by inserts), and nodes below an entity append the
backend store's own position key, which is only ever compared within
that one entity subtree.  Merged extents therefore interleave exactly as
the unsharded document does — results are bit-identical, not merely
deterministic — while each shard remains free to physically reorganize.

Per-shard state
===============

Each backend shard keeps its own secondary ``IndexSet`` (built at its
own load) and its own digest chain.  Mutations routed through this store
advance the touched shard's digest and mark its indexes dirty; the
scatter layer rebuilds a dirty shard's indexes before its next probe and
keys per-shard partial results by the shard digest — which is what makes
result-cache invalidation *shard-selective*: a write to shard 3 leaves
every other shard's cached partials valid.  The global ``IndexSet`` the
``ShardedStore`` itself builds at ``mark_loaded`` (over wrapped handles)
serves the compatibility path and is maintained incrementally by the
update engine like any other store's.
"""

from __future__ import annotations

from repro.errors import ShardError, StorageError
from repro.index import maintenance
from repro.shard.partition import (
    EXTENT_SPECS, DocumentPartition, DocumentPartitioner, ExtentSpec,
    route_entity, shard_of_key,
)
from repro.storage.interface import Handle, Store
from repro.xmlio.dom import Element

#: Default backend architecture for shards (System F: main-memory tree).
DEFAULT_BACKEND = "F"


class _Virtual:
    """A virtualized structural node (site or a container)."""

    __slots__ = ("tag", "rank")

    def __init__(self, tag: str, rank: tuple[int, ...]) -> None:
        self.tag = tag
        self.rank = rank                # doc-position prefix among virtuals

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<virtual {self.tag}>"


class _Extent:
    """One partitioned extent's live bookkeeping."""

    __slots__ = ("spec", "virtual", "containers", "seqs", "next_seq",
                 "_merged", "_seq_maps")

    def __init__(self, spec: ExtentSpec, virtual: _Virtual,
                 containers: list[Handle], seqs: list[list[int]]) -> None:
        self.spec = spec
        self.virtual = virtual
        self.containers = containers    # per shard: native container handle
        self.seqs = seqs                # per shard: global seqs, ascending
        self.next_seq = max((s[-1] for s in seqs if s), default=-1) + 1
        self._merged: list | None = None
        self._seq_maps: list[dict] | None = None

    def invalidate(self) -> None:
        self._merged = None
        self._seq_maps = None


class ShardedStore(Store):
    """Horizontally partitioned auction store with exact global order."""

    architecture = "sharded scatter-gather over backend stores"

    def __init__(self, shard_count: int = 2,
                 backends: tuple[str, ...] = (DEFAULT_BACKEND,)) -> None:
        super().__init__()
        if shard_count < 1:
            raise ShardError(f"shard_count must be >= 1, got {shard_count}")
        if not backends:
            raise ShardError("need at least one backend architecture")
        self.shard_count = shard_count
        self.backends = tuple(backends[rank % len(backends)]
                              for rank in range(shard_count))
        self.architecture = (
            f"sharded({shard_count} x {'/'.join(self.backends)}) scatter-gather")
        self._shards: list[Store] = []
        self._partition: DocumentPartition | None = None
        self._extents: dict[tuple[str, ...], _Extent] = {}
        self._extent_by_virtual: dict[_Virtual, _Extent] = {}
        self._container_extent: list[dict] = []     # per shard: native -> _Extent
        self._id_map: dict[str, tuple[int, tuple[str, ...]]] = {}
        self._shard_dirty: list[bool] = []
        self._build_virtuals()

    def _build_virtuals(self) -> None:
        self._site = _Virtual("site", ())
        self._regions = _Virtual("regions", (0,))
        self._region_virtuals = [
            _Virtual(spec.home_region, (0, position))
            for position, spec in enumerate(EXTENT_SPECS[:6])
        ]
        self._categories = _Virtual("categories", (1,))
        self._catgraph = _Virtual("catgraph", (2,))
        self._people = _Virtual("people", (3,))
        self._open = _Virtual("open_auctions", (4,))
        self._closed = _Virtual("closed_auctions", (5,))
        self._site_children = [self._regions, self._categories, self._catgraph,
                               self._people, self._open, self._closed]
        self._virtual_of_path = {
            **{("site", "regions", v.tag): v for v in self._region_virtuals},
            ("site", "categories"): self._categories,
            ("site", "catgraph"): self._catgraph,
            ("site", "people"): self._people,
            ("site", "open_auctions"): self._open,
            ("site", "closed_auctions"): self._closed,
        }

    # -- lifecycle ---------------------------------------------------------------

    def load(self, text: str) -> None:
        partition = DocumentPartitioner(self.shard_count).partition(text)
        self._install_partition(partition)
        self.mark_loaded(text)

    def load_partition(self, partition: DocumentPartition, *,
                       parallel: bool = False) -> None:
        """Load from an already-materialized partition (crash recovery).

        Skips re-partitioning: the fragments, order seeds, and id map are
        adopted as-is, so the reassembled store is the *exact* pre-crash
        layout, not merely an equivalent one.  ``parallel=True`` loads
        the shard fragments concurrently — the recovery-time analogue of
        the scatter pool.  The caller owns the digest: the loaded flag is
        set against the empty text (the merged serialization is never
        materialized here), and recovery immediately restores the
        checkpointed chain value via :meth:`restore_digest`.
        """
        if partition.shard_count != self.shard_count:
            raise ShardError(
                f"partition has {partition.shard_count} shards, store wants "
                f"{self.shard_count}")
        self._install_partition(partition, parallel=parallel)
        self.mark_loaded("")

    def _install_partition(self, partition: DocumentPartition, *,
                           parallel: bool = False) -> None:
        from repro.benchmark.systems import make_store
        shards = [make_store(backend) for backend in self.backends]
        if parallel and self.shard_count > 1:
            from concurrent.futures import ThreadPoolExecutor
            with ThreadPoolExecutor(max_workers=self.shard_count,
                                    thread_name_prefix="xmark-recover") as pool:
                list(pool.map(lambda pair: pair[0].load(pair[1]),
                              zip(shards, partition.shard_texts)))
        else:
            for store, fragment in zip(shards, partition.shard_texts):
                store.load(fragment)
        self._shards = shards
        self._partition = partition
        self._id_map = dict(partition.id_map)
        self._shard_dirty = [False] * self.shard_count
        self._extents.clear()
        self._extent_by_virtual.clear()
        self._container_extent = [dict() for _ in range(self.shard_count)]
        for spec in EXTENT_SPECS:
            containers = [self._native_container(rank, spec.path)
                          for rank in range(self.shard_count)]
            extent = _Extent(spec, self._virtual_of_path[spec.path],
                             containers, partition.extents[spec.path].seqs)
            self._extents[spec.path] = extent
            self._extent_by_virtual[extent.virtual] = extent
            for rank, container in enumerate(containers):
                self._container_extent[rank][container] = extent

    def _native_container(self, rank: int, path: tuple[str, ...]) -> Handle:
        store = self._shards[rank]
        node = store.root()
        for tag in path[1:]:
            found = store.children_by_tag(node, tag)
            if not found:
                raise ShardError(
                    f"shard {rank} fragment lacks /{'/'.join(path)}")
            node = found[0]
        return node

    def size_bytes(self) -> int:
        total = sum(store.size_bytes() for store in self._shards)
        return total + 64 * len(self._id_map)

    # -- shard introspection (scatter layer, service, CLI) -----------------------

    def shard_stores(self) -> list[Store]:
        return list(self._shards)

    def shard_store(self, rank: int) -> Store:
        return self._shards[rank]

    def shard_digest(self, rank: int) -> str | None:
        return self._shards[rank].document_digest()

    def shard_of_id(self, identifier: str) -> int | None:
        entry = self._id_map.get(identifier)
        return entry[0] if entry is not None else None

    def region_shard(self, region: str) -> int:
        return self._extents[("site", "regions", region)].spec.home_shard(
            self.shard_count)

    def extent_paths(self) -> list[tuple[str, ...]]:
        return list(self._extents)

    def extent_members(self, path: tuple[str, ...]) -> list[list[tuple[int, Handle]]]:
        """Per shard: the extent's ``(global_seq, native_handle)`` pairs in
        shard-local (= ascending-seq) order — the scatter layer's probe
        iteration units."""
        return [self.extent_members_of(path, rank)
                for rank in range(self.shard_count)]

    def extent_members_of(self, path: tuple[str, ...],
                          rank: int) -> list[tuple[int, Handle]]:
        """One shard's slice of :meth:`extent_members` (built on demand, so
        cache-hit scatter executions never pay the materialization)."""
        extent = self._extents[path]
        children = self._entity_children(rank, extent)
        return list(zip(extent.seqs[rank], children))

    def shard_indexes_dirty(self, rank: int) -> bool:
        return self._shard_dirty[rank]

    def ensure_shard_indexes(self, rank: int) -> None:
        """Rebuild one shard's secondary indexes if writes staled them.

        Delegated mutations bypass the shards' own index maintenance (the
        engine maintains the *global* set), so touched shards are marked
        dirty and rebuilt lazily here — before the scatter layer's next
        probe against them.  Dropping/rebuilding is always safe; the cost
        is O(shard) once per write burst, priced in docs/SHARDING.md.
        """
        if self._shard_dirty[rank]:
            maintenance.rebuild(self._shards[rank])
            self._shard_dirty[rank] = False

    def partition_summary(self) -> dict:
        summary = self._partition.summary() if self._partition else {}
        summary["backends"] = list(self.backends)
        return summary

    # -- durability (checkpoints, per-shard WAL routing) ---------------------------

    def partition_state(self) -> dict:
        """The *current* partition metadata, JSON-ready (checkpointing).

        Seqs are read from the live extents (they evolve with inserts and
        removals), not from the load-time partition; together with
        :meth:`shard_fragment_texts` this is everything
        :func:`repro.shard.partition.restore_partition` needs to
        reassemble the exact layout.
        """
        return {
            "extent_seqs": {"/".join(path): [list(seqs)
                                             for seqs in extent.seqs]
                            for path, extent in self._extents.items()},
            "id_map": {identifier: [rank, "/".join(path)]
                       for identifier, (rank, path) in self._id_map.items()},
        }

    def shard_fragment_texts(self) -> list[str]:
        """Every shard's current fragment, serialized through its own
        navigation API (each is a complete loadable ``site`` document)."""
        from repro.storage.interface import store_document_text
        return [store_document_text(store) for store in self._shards]

    def route_op(self, op) -> int:
        """The primary shard of one typed update operation — the WAL
        stream its commit record belongs to.

        Routing mirrors the partition policies and is resolvable *before*
        the op applies: a new person hashes by its own id, bids and
        closings follow the open auction, a retirement follows the item.
        Cascades may touch other shards; recovery replays the logical op
        through the whole store, so one stream per commit suffices.
        """
        from repro.update.ops import (
            CloseAuction, DeleteItem, PlaceBid, RegisterPerson,
        )
        if isinstance(op, RegisterPerson):
            return shard_of_key(op.person.attributes.get("id", ""),
                                self.shard_count)
        if isinstance(op, (PlaceBid, CloseAuction)):
            target = self.shard_of_id(op.auction_id)
        elif isinstance(op, DeleteItem):
            target = self.shard_of_id(op.item_id)
        else:
            target = None
        return target if target is not None else 0

    # -- internal helpers --------------------------------------------------------

    def _entity_children(self, rank: int, extent: _Extent) -> list:
        """The shard container's element children (aligned with seqs)."""
        return self._shards[rank].children(extent.containers[rank])

    def _merged_members(self, extent: _Extent) -> list:
        if extent._merged is None:
            pairs: list[tuple[int, tuple[int, Handle]]] = []
            for rank in range(self.shard_count):
                children = self._entity_children(rank, extent)
                seqs = extent.seqs[rank]
                if len(children) != len(seqs):
                    raise ShardError(
                        f"extent /{'/'.join(extent.spec.path)} out of sync on "
                        f"shard {rank}: {len(children)} children, "
                        f"{len(seqs)} order seeds")
                pairs.extend((seq, (rank, child))
                             for seq, child in zip(seqs, children))
            pairs.sort(key=lambda pair: pair[0])
            extent._merged = [handle for _seq, handle in pairs]
        return extent._merged

    def _seq_of(self, extent: _Extent, rank: int, native: Handle) -> int:
        if extent._seq_maps is None:
            extent._seq_maps = [
                dict(zip(self._entity_children(r, extent), extent.seqs[r]))
                for r in range(self.shard_count)
            ]
        try:
            return extent._seq_maps[rank][native]
        except KeyError:
            raise ShardError("handle is not a live extent member") from None

    def _entity_prefix(self, rank: int, native: Handle) -> tuple:
        """(extent rank..., global seq) of the entity containing ``native``."""
        store = self._shards[rank]
        current = native
        while True:
            parent = store.parent(current)
            if parent is None:
                raise ShardError("handle outside every partitioned extent")
            extent = self._container_extent[rank].get(parent)
            if extent is not None:
                return extent.virtual.rank + (self._seq_of(extent, rank, current),)
            current = parent

    # -- navigation ---------------------------------------------------------------

    def root(self) -> Handle:
        return self._site

    def tag(self, node: Handle) -> str:
        if isinstance(node, _Virtual):
            return node.tag
        rank, native = node
        return self._shards[rank].tag(native)

    def children(self, node: Handle) -> list[Handle]:
        if isinstance(node, _Virtual):
            if node is self._site:
                return list(self._site_children)
            if node is self._regions:
                return list(self._region_virtuals)
            return list(self._merged_members(self._extent_by_virtual[node]))
        rank, native = node
        return [(rank, child) for child in self._shards[rank].children(native)]

    def children_by_tag(self, node: Handle, tag: str) -> list[Handle]:
        if isinstance(node, _Virtual):
            if node is self._site or node is self._regions:
                return [child for child in self.children(node) if child.tag == tag]
            extent = self._extent_by_virtual[node]
            if tag != extent.spec.entity_tag:
                return []
            return list(self._merged_members(extent))
        rank, native = node
        return [(rank, child)
                for child in self._shards[rank].children_by_tag(native, tag)]

    def descendants_by_tag(self, node: Handle, tag: str) -> list[Handle]:
        if not isinstance(node, _Virtual):
            rank, native = node
            return [(rank, found)
                    for found in self._shards[rank].descendants_by_tag(native, tag)]
        out: list[Handle] = []
        for child in self.children(node):
            if isinstance(child, _Virtual):
                if child.tag == tag:
                    out.append(child)
                out.extend(self.descendants_by_tag(child, tag))
            else:
                rank, native = child
                store = self._shards[rank]
                if store.tag(native) == tag:
                    out.append(child)
                out.extend((rank, found)
                           for found in store.descendants_by_tag(native, tag))
        return out

    def parent(self, node: Handle) -> Handle | None:
        if isinstance(node, _Virtual):
            if node is self._site:
                return None
            if node in self._region_virtuals:
                return self._regions
            return self._site
        rank, native = node
        above = self._shards[rank].parent(native)
        if above is None:
            raise ShardError("native shard roots are never exposed")
        extent = self._container_extent[rank].get(above)
        if extent is not None:
            return extent.virtual
        return (rank, above)

    def attribute(self, node: Handle, name: str) -> str | None:
        if isinstance(node, _Virtual):
            return None
        rank, native = node
        return self._shards[rank].attribute(native, name)

    def attributes(self, node: Handle) -> dict[str, str]:
        if isinstance(node, _Virtual):
            return {}
        rank, native = node
        return self._shards[rank].attributes(native)

    def child_texts(self, node: Handle) -> list[str]:
        if isinstance(node, _Virtual):
            return []
        rank, native = node
        return self._shards[rank].child_texts(native)

    def string_value(self, node: Handle) -> str:
        if isinstance(node, _Virtual):
            return "".join(self.string_value(child)
                           for child in self.children(node))
        rank, native = node
        return self._shards[rank].string_value(native)

    def content(self, node: Handle) -> list[Handle | str]:
        if isinstance(node, _Virtual):
            return list(self.children(node))
        rank, native = node
        return [(rank, part) if not isinstance(part, str) else part
                for part in self._shards[rank].content(native)]

    def doc_position(self, node: Handle):
        if isinstance(node, _Virtual):
            return node.rank
        rank, native = node
        return self._entity_prefix(rank, native) + (
            self._shards[rank].doc_position(native),)

    def build_dom(self, node: Handle) -> Element:
        if isinstance(node, _Virtual):
            return super().build_dom(node)
        rank, native = node
        return self._shards[rank].build_dom(native)

    # -- optional capabilities ------------------------------------------------------

    def lookup_id(self, value: str) -> Handle | None:
        entry = self._id_map.get(value)
        if entry is None:
            return None
        rank, path = entry
        store = self._shards[rank]
        if store.has_id_index():
            native = store.lookup_id(value)
            return (rank, native) if native is not None else None
        extent = self._extents[path]
        for native in self._entity_children(rank, extent):
            if store.attribute(native, "id") == value:
                return (rank, native)
        return None

    def has_id_index(self) -> bool:
        return True                     # the routing map is an id index

    # -- mutation ----------------------------------------------------------------------

    def insert_child(self, parent: Handle, element: Element,
                     index: int | None = None) -> Handle:
        if isinstance(parent, _Virtual):
            extent = self._extent_by_virtual.get(parent)
            if extent is None:
                raise StorageError(
                    f"cannot insert into the virtual <{parent.tag}> container")
            size = sum(len(seqs) for seqs in extent.seqs)
            if index is not None and index != size:
                raise StorageError(
                    "sharded extents support append-only entity inserts")
            rank = route_entity(extent.spec, element, self.shard_count)
            native = self._shards[rank].insert_child(
                extent.containers[rank], element)
            extent.seqs[rank].append(extent.next_seq)
            extent.next_seq += 1
            extent.invalidate()
            identifier = element.attributes.get("id")
            if identifier:
                self._id_map[identifier] = (rank, extent.spec.path)
            self._touch_shard(rank, f"ins:{extent.spec.entity_tag}")
            return (rank, native)
        rank, native_parent = parent
        native = self._shards[rank].insert_child(native_parent, element, index)
        self._touch_shard(rank, f"ins:{element.tag}")
        return (rank, native)

    def remove_node(self, node: Handle) -> None:
        if isinstance(node, _Virtual):
            raise StorageError("virtual containers cannot be removed")
        rank, native = node
        store = self._shards[rank]
        tag = store.tag(native)
        above = store.parent(native)
        if above is None:
            raise StorageError("cannot remove the document root")
        extent = self._container_extent[rank].get(above)
        if extent is not None:
            position = store.children(above).index(native)
            del extent.seqs[rank][position]
            extent.invalidate()
            identifier = store.attribute(native, "id")
            if identifier:
                self._id_map.pop(identifier, None)
        store.remove_node(native)
        self._touch_shard(rank, f"del:{tag}")

    def set_text(self, node: Handle, text: str) -> None:
        if isinstance(node, _Virtual):
            raise StorageError("virtual containers hold no text")
        rank, native = node
        self._shards[rank].set_text(native, text)
        self._touch_shard(rank, f"txt:{self._shards[rank].tag(native)}")

    def set_attribute(self, node: Handle, name: str, value: str) -> None:
        if isinstance(node, _Virtual):
            raise StorageError("virtual containers carry no attributes")
        rank, native = node
        self._shards[rank].set_attribute(native, name, value)
        self._touch_shard(rank, f"att:{name}")

    def _touch_shard(self, rank: int, token: str) -> None:
        """One shard was physically written: advance its digest chain and
        stale its secondary indexes (rebuilt lazily by the scatter layer)."""
        self._shard_dirty[rank] = True
        self._shards[rank].advance_digest(token)
