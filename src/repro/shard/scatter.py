"""Parallel scatter-gather query execution over a :class:`ShardedStore`.

The executor is the sharded deployment's distributed query processor.  It
recognizes four distributable query shapes and falls back to the sharded
store's compatibility path (the whole stack over the virtual document
view) for everything else, so it is *never* wrong — only differently
fast:

* **routed** — the query's one absolute path is pinned to a single shard,
  either by an ``[@id = "literal"]`` predicate on a partitioned extent
  (Q1: the partitioner's hash places ``person0``'s shard without touching
  the others) or by passing through a region container (Q13: a region's
  items live wholly on its home shard).  The whole query executes on that
  shard alone — every other shard would contribute nothing.
* **partial count** — ``count(...)`` over one extent-rooted sequence:
  every shard computes its partial count and the gather sums integers
  (bit-identical by construction).  Where the per-binding ``where`` is a
  range the shard's sorted index covers — and the index's build-time
  cardinality counters prove the ``return`` yields exactly one item per
  qualifying binding — the partial collapses to an O(log n) bisection
  (Q5 never materializes a single binding).
* **broadcast count-join** — the Q8 shape: a hash-joined correlated let
  consumed only through ``count()``.  Each shard reads its *build-side
  partials straight off its value index's buckets*; the merged key→count
  table is broadcast; each shard then probes only its own slice of the
  outer extent, and the gather merges per-binding results by global
  sequence number — document order restored exactly.
* **scatter FLWOR** — a single-``for`` loop over one extent with a
  shard-local ``where`` and a constructor ``return`` (Q2/Q3/Q4/Q17):
  every shard maps its own slice, the gather merges by global sequence.

Per-shard work runs on a bounded worker pool with per-shard admission
semaphores.  Per-shard partials (counts, build tables, probe slices,
routed results) are cached keyed by the **shard digest**, which is what
makes invalidation shard-selective: a write routed to shard 3 advances
only shard 3's digest, so every other shard's cached partials keep
hitting.  A dirty shard's secondary indexes are rebuilt lazily before
its next probe.

With one shard there is nothing to scatter: the executor runs the
backend store's own plan directly, which is also the honest baseline the
scaling benchmark compares against.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace

from repro.benchmark.systems import get_profile
from repro.errors import ShardError
from repro.index.builder import extract_values
from repro.index.indexes import normalize_key
from repro.obs.trace import NULL_TRACER
from repro.shard.partition import EXTENT_SPECS
from repro.shard.store import ShardedStore
from repro.xquery.ast import (
    ElementCtor, Expr, FLWOR, ForClause, FunctionCall, LetClause, Path,
    VarRef, walk,
)
from repro.xquery.evaluator import QueryResult, _Interpreter, evaluate
from repro.xquery.parser import parse_query
from repro.xquery.planner import (
    CompiledQuery, SystemProfile, _absolute_prefix, _find_id_predicate,
    _is_absolute, _join_base_extent, _match_correlated_let, _steps_accessor,
    _var_accessor, compile_query,
)
from repro.xquery.sequence import NodeItem, Navigator, effective_boolean

#: Entity extent paths (container + entity tag), e.g. ("site","people","person").
_ENTITY_PATHS = {spec.path + (spec.entity_tag,): spec.path
                 for spec in EXTENT_SPECS}
_REGION_CONTAINERS = {spec.path: spec for spec in EXTENT_SPECS
                      if spec.home_region is not None}


def exec_profile(backend: str) -> SystemProfile:
    """The per-shard execution profile: the backend's own optimizer with
    every secondary-index family enabled — shard-local indexes are part
    of the sharded subsystem, whatever the 2002 profile of the backend."""
    profile = get_profile(backend)
    return replace(profile, name=profile.name + "+shard",
                   use_value_index=True, use_sorted_index=True,
                   use_path_index=True)


@dataclass(frozen=True, slots=True)
class ShardedOutcome:
    """One distributed execution: its result and where the work went."""

    result: QueryResult
    plan_kind: str                      # routed|partial_count|broadcast_join|scatter_flwor|fallback|single
    shards_used: int
    plan_cache_hit: bool
    partial_hits: int
    partial_misses: int
    span: object = None                 # the scatter.query root span when traced


# -- recognized plan shapes -----------------------------------------------------------


@dataclass(slots=True)
class _Plan:
    kind: str
    target_shard: int | None = None     # routed
    empty: bool = False                 # routed to an id no shard owns
    ast: object = None                  # the parsed Query (probe interpreters)
    extent: tuple[str, ...] = ()        # outer/counted entity extent path
    var: str = ""                       # outer for-variable
    where: Expr | None = None
    ret: Expr | None = None
    count_flwor: bool = False           # partial_count over a FLWOR
    where_accessor: tuple[str, ...] = ()
    ret_accessor: tuple[str, ...] | None = None
    join_extent: tuple[str, ...] = ()   # build-side entity extent path
    join_accessor: tuple[str, ...] = () # build-side key accessor
    outer_accessor: tuple[str, ...] = ()
    let_var: str = ""


def _absolute_paths(expr: Expr) -> list[Path]:
    return [node for node in walk(expr)
            if isinstance(node, Path) and _is_absolute(node)]


def _full_extent_path(path: Path) -> tuple[str, ...] | None:
    """The entity extent a predicate-free absolute path iterates, if any."""
    if not _is_absolute(path):
        return None
    prefix, length = _absolute_prefix(path)
    if length != len(path.steps):
        return None
    return prefix if prefix in _ENTITY_PATHS else None


def _count_only_uses(expr: Expr, var: str) -> bool:
    """True when every reference to ``$var`` is exactly ``count($var)``."""
    if isinstance(expr, FunctionCall) and expr.name == "count" \
            and len(expr.args) == 1 and isinstance(expr.args[0], VarRef) \
            and expr.args[0].name == var:
        return True
    if isinstance(expr, VarRef):
        return expr.name != var
    from repro.xquery.planner import _direct_children
    return all(_count_only_uses(child, var) for child in _direct_children(expr))


def _routable_step(path: Path, sharded: ShardedStore) -> tuple[int | None, bool] | None:
    """(target shard, known) when the path is pinned to one shard.

    Region pinning: the path descends through a region container (whose
    items live wholly on the region's home shard).  Id pinning: a step
    whose only predicate equates ``@id`` with a literal, on a hash- or
    region-partitioned extent — every entity carrying that id (ids are
    unique in auction documents) lives on the shard the routing map
    names; an unknown id matches nothing anywhere.
    """
    prefix: list[str] = []
    for position, step in enumerate(path.steps):
        if step.axis != "child" or step.name is None:
            return None
        prefix.append(step.name)
        here = tuple(prefix)
        if not step.predicates:
            if here in _REGION_CONTAINERS and position < len(path.steps) - 1:
                return _REGION_CONTAINERS[here].home_shard(sharded.shard_count), True
            continue
        matched = _find_id_predicate(path)
        if matched is None or matched[0] != position or len(step.predicates) != 1:
            return None
        if here not in _ENTITY_PATHS:
            return None
        target = sharded.shard_of_id(matched[1])
        return (target, target is not None)
    return None


class ScatterGatherExecutor:
    """Distributed execution over one sharded store."""

    def __init__(self, sharded: ShardedStore, *,
                 max_workers: int | None = None,
                 per_shard_limit: int = 2,
                 partial_cache_size: int = 512,
                 plan_cache_size: int = 128,
                 tracer=NULL_TRACER) -> None:
        # Imported here, not at module level: repro.service.service imports
        # this module, and importing the service package from our body
        # would close that cycle mid-initialization.
        from repro.service.cache import LRUCache
        self.sharded = sharded
        self.tracer = tracer
        self._profiles = [exec_profile(backend) for backend in sharded.backends]
        workers = max_workers or min(8, max(2, sharded.shard_count))
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="xmark-shard")
        self._gates = [threading.BoundedSemaphore(per_shard_limit)
                       for _ in range(sharded.shard_count)]
        self._rebuild_locks = [threading.Lock()
                               for _ in range(sharded.shard_count)]
        self.partial_cache = LRUCache(partial_cache_size)
        self.plan_cache = LRUCache(plan_cache_size)
        self._compiled = LRUCache(plan_cache_size * max(1, sharded.shard_count))
        self._closed = False

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        if not self._closed:
            # lint: ok(shared-state) — monotonic close latch: a lost race
            # only means two callers both reach pool.shutdown, which
            # concurrent.futures makes idempotent and thread-safe.
            self._closed = True
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "ScatterGatherExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- public API ----------------------------------------------------------------

    def explain(self, text: str) -> str:
        """The distributed plan kind this query would execute under."""
        plan, _hit = self._plan(text)
        return plan.kind

    def execute(self, text: str) -> ShardedOutcome:
        if self._closed:
            raise ShardError("scatter-gather executor is closed")
        tracer = self.tracer
        if not tracer.enabled:
            return self._execute(text)
        root = tracer.begin("scatter.query", query=text)
        try:
            with tracer.activate(root):
                outcome = self._execute(text)
        except BaseException as exc:
            root.set(error=type(exc).__name__).finish()
            raise
        root.set(plan=outcome.plan_kind, shards_used=outcome.shards_used,
                 plan_cache_hit=outcome.plan_cache_hit,
                 partial_hits=outcome.partial_hits,
                 partial_misses=outcome.partial_misses,
                 rows=len(outcome.result.items)).finish()
        return replace(outcome, span=root)

    def _execute(self, text: str) -> ShardedOutcome:
        if self.sharded.shard_count == 1:
            return self._single_shard(text)
        plan, plan_hit = self._plan(text)
        hits0 = self.partial_cache.stats.hits
        misses0 = self.partial_cache.stats.misses
        if plan.kind == "routed":
            result, used = self._execute_routed(text, plan)
        elif plan.kind == "partial_count":
            result, used = self._execute_count(text, plan)
        elif plan.kind == "broadcast_join":
            result, used = self._execute_join(text, plan)
        elif plan.kind == "scatter_flwor":
            result, used = self._execute_scatter_flwor(text, plan)
        else:
            result, used = self._execute_fallback(text), self.sharded.shard_count
        return ShardedOutcome(
            result=result, plan_kind=plan.kind, shards_used=used,
            plan_cache_hit=plan_hit,
            partial_hits=self.partial_cache.stats.hits - hits0,
            partial_misses=self.partial_cache.stats.misses - misses0,
        )

    # -- plan recognition ----------------------------------------------------------

    def _plan(self, text: str) -> tuple[_Plan, bool]:
        return self.plan_cache.get_or_compute(text, lambda: self._analyze(text))

    def _analyze(self, text: str) -> _Plan:
        query = parse_query(text)
        if query.functions:
            return _Plan("fallback")    # user functions: compatibility path
        body = query.body
        plan = self._analyze_routed(body)
        if plan is None:
            plan = self._analyze_count(body)
        if plan is None:
            plan = self._analyze_join(body)
        if plan is None:
            plan = self._analyze_scatter_flwor(body)
        if plan is None:
            plan = _Plan("fallback")
        plan.ast = query
        return plan

    def _analyze_routed(self, body: Expr) -> _Plan | None:
        if isinstance(body, Path):
            base: Path = body
            rest: list[Expr] = []
        elif isinstance(body, FLWOR) and len(body.clauses) == 1 \
                and isinstance(body.clauses[0], ForClause) \
                and isinstance(body.clauses[0].sequence, Path):
            base = body.clauses[0].sequence
            rest = [clause.key for clause in body.order] + [body.ret]
            if body.where is not None:
                rest.append(body.where)
        else:
            return None
        if not _is_absolute(base):
            return None
        routed = _routable_step(base, self.sharded)
        if routed is None:
            return None
        # Everything else must be shard-local: no second absolute path.
        for expr in rest:
            if _absolute_paths(expr):
                return None
        for step in base.steps:
            for predicate in step.predicates:
                if any(p is not base for p in _absolute_paths(predicate)):
                    return None
        target, known = routed
        return _Plan("routed", target_shard=target, empty=not known)

    def _analyze_count(self, body: Expr) -> _Plan | None:
        if not (isinstance(body, FunctionCall) and body.name == "count"
                and len(body.args) == 1):
            return None
        arg = body.args[0]
        if isinstance(arg, Path):
            if _absolute_paths(arg) != [arg]:
                return None
            prefix, length = _absolute_prefix(arg)
            if length != len(arg.steps) or not _is_absolute(arg):
                return None
            if not self._inside_extent(prefix):
                return None
            return _Plan("partial_count", count_flwor=False)
        if not isinstance(arg, FLWOR):
            return None
        if len(arg.clauses) != 1 or not isinstance(arg.clauses[0], ForClause):
            return None
        clause = arg.clauses[0]
        base = clause.sequence
        if not isinstance(base, Path) or not _is_absolute(base):
            return None
        prefix, length = _absolute_prefix(base)
        if length != len(base.steps) or not self._inside_extent(prefix):
            return None
        if [p for p in _absolute_paths(arg) if p is not base]:
            return None
        plan = _Plan("partial_count", count_flwor=True, var=clause.var)
        # Pushdown candidates: remember the return accessor so execution
        # can match it against the shard's sorted-index range plan.
        if isinstance(arg.ret, VarRef) and arg.ret.name == clause.var:
            plan.ret_accessor = ()
        elif isinstance(arg.ret, Path) and isinstance(arg.ret.root, VarRef) \
                and arg.ret.root.name == clause.var:
            plan.ret_accessor = _steps_accessor(arg.ret.steps)
        return plan

    def _inside_extent(self, prefix: tuple[str, ...]) -> bool:
        """True when the path descends strictly into one partitioned
        extent — per-shard evaluation then partitions its result set (the
        virtual structural layer above extents repeats on every shard)."""
        return any(len(prefix) > len(container) and prefix[:len(container)] == container
                   for container in _ENTITY_PATHS.values())

    def _analyze_join(self, body: Expr) -> _Plan | None:
        if not isinstance(body, FLWOR) or body.order:
            return None
        if len(body.clauses) != 2:
            return None
        outer, let = body.clauses
        if not isinstance(outer, ForClause) or not isinstance(let, LetClause):
            return None
        if not isinstance(outer.sequence, Path):
            return None
        extent = _full_extent_path(outer.sequence)
        if extent is None:
            return None
        join = _match_correlated_let(let, {outer.var})
        if join is None or join.strategy != "hash":
            return None
        # The let must bind the matched build rows *themselves*: a computed
        # return (``return $t/bidder``) makes count($a) count whatever the
        # return yields per match, which bucket counts cannot stand in for.
        inner_flwor = let.expr
        if not (isinstance(inner_flwor, FLWOR)
                and isinstance(inner_flwor.ret, VarRef)
                and inner_flwor.ret.name == join.inner_var):
            return None
        build_extent = _join_base_extent(join)
        if build_extent is None or build_extent not in _ENTITY_PATHS:
            return None
        inner = _var_accessor(join.inner_key, join.inner_var)
        outer_key = _var_accessor(join.outer_key, outer.var)
        if inner is None or outer_key is None:
            return None
        inner_accessor, inner_wrappers = inner
        outer_accessor, outer_wrappers = outer_key
        if inner_wrappers or outer_wrappers:
            return None
        if not outer_accessor or not outer_accessor[-1].startswith("@"):
            return None                 # outer key must be single-valued
        if not isinstance(body.ret, ElementCtor):
            return None
        if not _count_only_uses(body.ret, let.var):
            return None
        for expr in ([body.ret] + ([body.where] if body.where is not None else [])):
            if _absolute_paths(expr):
                return None
        if body.where is not None and let.var in {
                node.name for node in walk(body.where) if isinstance(node, VarRef)}:
            return None
        return _Plan(
            "broadcast_join", extent=extent, var=outer.var,
            where=body.where, ret=body.ret, let_var=let.var,
            join_extent=build_extent, join_accessor=inner_accessor,
            outer_accessor=outer_accessor,
        )

    def _analyze_scatter_flwor(self, body: Expr) -> _Plan | None:
        if not isinstance(body, FLWOR) or body.order:
            return None
        if len(body.clauses) != 1 or not isinstance(body.clauses[0], ForClause):
            return None
        clause = body.clauses[0]
        if not isinstance(clause.sequence, Path):
            return None
        extent = _full_extent_path(clause.sequence)
        if extent is None:
            return None
        if not isinstance(body.ret, ElementCtor):
            return None                 # constructed results merge cleanly
        for expr in ([body.ret] + ([body.where] if body.where is not None else [])):
            if _absolute_paths(expr):
                return None
        return _Plan("scatter_flwor", extent=extent, var=clause.var,
                     where=body.where, ret=body.ret)

    # -- execution helpers ---------------------------------------------------------

    def _single_shard(self, text: str) -> ShardedOutcome:
        """One shard: nothing to scatter — the backend's own plan runs."""
        with self.tracer.span("scatter.shard", shard=0,
                              backend=self.sharded.backends[0]):
            result = self._evaluate_on_shard(0, text)
        return ShardedOutcome(result=result, plan_kind="single", shards_used=1,
                              plan_cache_hit=False, partial_hits=0,
                              partial_misses=0)

    def _compile_for_shard(self, rank: int, text: str) -> CompiledQuery:
        key = (rank, text)
        compiled, _hit = self._compiled.get_or_compute(
            key, lambda: compile_query(text, self.sharded.shard_store(rank),
                                       self._profiles[rank],
                                       tracer=self.tracer))
        return compiled

    def _evaluate_on_shard(self, rank: int, text: str) -> QueryResult:
        self._ensure_indexes(rank)
        return evaluate(self._compile_for_shard(rank, text),
                        tracer=self.tracer)

    def _ensure_indexes(self, rank: int) -> None:
        if self.sharded.shard_indexes_dirty(rank):
            with self._rebuild_locks[rank]:
                self.sharded.ensure_shard_indexes(rank)

    def _scatter(self, ranks: list[int], fn) -> list:
        """Run ``fn(rank)`` for each rank on the pool under per-shard
        admission; results come back in rank order.

        When tracing, each rank gets a ``scatter.shard`` child span
        attached to the calling thread's current span — pool threads
        have no context stack, so the parent is captured here and
        activated on the worker (nested evaluator/plan spans land under
        the right shard).
        """
        tracer = self.tracer
        if not tracer.enabled:
            futures = [self._pool.submit(self._gated, rank, fn)
                       for rank in ranks]
            return [future.result() for future in futures]
        parent = tracer.current()

        def traced(rank: int):
            span = tracer.begin("scatter.shard", parent=parent, shard=rank,
                                backend=self.sharded.backends[rank])
            try:
                with tracer.activate(span):
                    return self._gated(rank, fn)
            finally:
                span.finish()

        futures = [self._pool.submit(traced, rank) for rank in ranks]
        return [future.result() for future in futures]

    def _gated(self, rank: int, fn):
        with self._gates[rank]:
            return fn(rank)

    def _partial(self, rank: int, family: str, text: str, compute,
                 digest: str | None = None):
        """A per-shard partial, cached under the shard's digest.

        ``digest`` overrides the default single-shard digest for partials
        that depend on more than one shard's state (a broadcast probe
        embeds the merged build table, so its key must cover every
        shard's digest, not just the probing shard's).
        """
        key = (rank, digest or self.sharded.shard_digest(rank), family, text)
        value, _hit = self.partial_cache.get_or_compute(key, compute)
        return value

    def _all_digests(self) -> str:
        return "|".join(self.sharded.shard_digest(rank) or ""
                        for rank in range(self.sharded.shard_count))

    def _interpreter(self, rank: int, plan: _Plan) -> _Interpreter:
        compiled = CompiledQuery(
            query=plan.ast, store=self.sharded.shard_store(rank),
            profile=self._profiles[rank])
        return _Interpreter(compiled)

    def _gather_result(self, slices: list[list[tuple[int, list]]]) -> QueryResult:
        """Merge per-shard (global_seq, items) slices into document order."""
        with self.tracer.span("scatter.merge") as span:
            merged: list[tuple[int, list]] = []
            for piece in slices:
                merged.extend(piece)
            merged.sort(key=lambda pair: pair[0])
            items: list = []
            for _seq, row in merged:
                items.extend(row)
            span.set(slices=len(slices), rows=len(items))
        return QueryResult(items, Navigator(self.sharded))

    # -- plan executions -----------------------------------------------------------

    def _execute_routed(self, text: str, plan: _Plan) -> tuple[QueryResult, int]:
        if plan.empty:
            return QueryResult([], Navigator(self.sharded)), 0
        rank = plan.target_shard
        with self.tracer.span("scatter.shard", shard=rank,
                              backend=self.sharded.backends[rank],
                              routed=True):
            result = self._partial(
                rank, "routed", text,
                lambda: self._gated(rank,
                                    lambda r: self._evaluate_on_shard(r, text)))
        return result, 1

    def _execute_count(self, text: str, plan: _Plan) -> tuple[QueryResult, int]:
        ranks = list(range(self.sharded.shard_count))
        partials = self._scatter(
            ranks,
            lambda rank: self._partial(rank, "count", text,
                                       lambda: self._count_partial(rank, text, plan)))
        return QueryResult([sum(partials)], Navigator(self.sharded)), len(ranks)

    def _count_partial(self, rank: int, text: str, plan: _Plan) -> int:
        self._ensure_indexes(rank)
        compiled = self._compile_for_shard(rank, text)
        if plan.count_flwor and plan.ret_accessor is not None \
                and compiled.range_plans:
            pushed = self._count_pushdown(rank, compiled, plan)
            if pushed is not None:
                return pushed
        result = evaluate(compiled, tracer=self.tracer)
        return int(result.items[0])

    def _count_pushdown(self, rank: int, compiled: CompiledQuery,
                        plan: _Plan) -> int | None:
        """Answer the partial count by bisection when provably exact.

        The shard's range plan already encodes the normalized predicate;
        the index's build-time cardinality counters (``nodes_empty``,
        ``nodes_multi``) prove every extent node holds exactly one key
        value, and the return accessor must name the same field (with or
        without its ``text()`` step) or the binding itself — then
        qualifying index entries and returned items correspond 1:1.
        """
        body = compiled.query.body
        if not (isinstance(body, FunctionCall) and body.args
                and isinstance(body.args[0], FLWOR)):
            return None
        range_plan = compiled.range_plans.get(id(body.args[0]))
        if range_plan is None:
            return None
        accessor = plan.ret_accessor
        if accessor != () and accessor != range_plan.accessor \
                and accessor + ("text()",) != range_plan.accessor:
            return None
        store = self.sharded.shard_store(rank)
        if store.indexes is None:
            return None
        index = store.indexes.sorted_field(range_plan.path, range_plan.accessor)
        if index is None or index.nodes_empty or index.nodes_multi:
            return None
        store.stats.index_lookups += 1
        with self.tracer.span("index.probe", kind="count_pushdown",
                              shard=rank) as span:
            count = index.count(range_plan.op, range_plan.bound)
            span.set(count=count)
        return count

    def _execute_join(self, text: str, plan: _Plan) -> tuple[QueryResult, int]:
        ranks = list(range(self.sharded.shard_count))
        builds = self._scatter(
            ranks,
            lambda rank: self._partial(rank, "join-build", text,
                                       lambda: self._build_partial(rank, plan)))
        table: dict = {}
        for partial in builds:
            for key, count in partial.items():
                table[key] = table.get(key, 0) + count
        container = _ENTITY_PATHS[plan.extent]
        all_digests = self._all_digests()
        slices = self._scatter(
            ranks,
            lambda rank: self._partial(
                rank, "join-probe", text,
                lambda: self._probe_partial(
                    rank, plan,
                    self.sharded.extent_members_of(container, rank), table),
                digest=all_digests))
        return self._gather_result(slices), len(ranks)

    def _build_partial(self, rank: int, plan: _Plan) -> dict:
        """key -> matching build-side node count, for one shard."""
        self._ensure_indexes(rank)
        store = self.sharded.shard_store(rank)
        container = _ENTITY_PATHS[plan.join_extent]
        if store.indexes is not None:
            index = store.indexes.value_field(plan.join_extent, plan.join_accessor)
            if index is not None:
                store.stats.index_lookups += 1
                return index.key_counts()
        counts: dict = {}
        for _seq, native in self.sharded.extent_members_of(container, rank):
            keys = {normalize_key(value)
                    for value in extract_values(store, native, plan.join_accessor)}
            keys.discard(None)
            for key in keys:
                counts[key] = counts.get(key, 0) + 1
        return counts

    def _probe_partial(self, rank: int, plan: _Plan,
                       members: list, table: dict) -> list[tuple[int, list]]:
        """(global_seq, result items) for one shard's outer-extent slice."""
        store = self.sharded.shard_store(rank)
        interpreter = self._interpreter(rank, plan)
        out: list[tuple[int, list]] = []
        for seq, native in members:
            interpreter.variables[plan.var] = [NodeItem(native)]
            if plan.where is not None and not effective_boolean(
                    interpreter.eval(plan.where)):
                continue
            count = 0
            values = extract_values(store, native, plan.outer_accessor)
            if values:
                count = table.get(normalize_key(values[0]), 0)
            interpreter.variables[plan.let_var] = [0.0] * count
            out.append((seq, interpreter.eval(plan.ret)))
        return out

    def _execute_scatter_flwor(self, text: str,
                               plan: _Plan) -> tuple[QueryResult, int]:
        ranks = list(range(self.sharded.shard_count))
        container = _ENTITY_PATHS[plan.extent]
        slices = self._scatter(
            ranks,
            lambda rank: self._partial(
                rank, "flwor", text,
                lambda: self._flwor_partial(
                    rank, plan,
                    self.sharded.extent_members_of(container, rank))))
        return self._gather_result(slices), len(ranks)

    def _flwor_partial(self, rank: int, plan: _Plan,
                       members: list) -> list[tuple[int, list]]:
        interpreter = self._interpreter(rank, plan)
        out: list[tuple[int, list]] = []
        for seq, native in members:
            interpreter.variables[plan.var] = [NodeItem(native)]
            if plan.where is not None and not effective_boolean(
                    interpreter.eval(plan.where)):
                continue
            out.append((seq, interpreter.eval(plan.ret)))
        return out

    def _execute_fallback(self, text: str) -> QueryResult:
        """The compatibility path: the full stack over the virtual view."""
        key = ("*", text)
        compiled, _hit = self._compiled.get_or_compute(
            key, lambda: compile_query(text, self.sharded, SHARDED_PROFILE,
                                       tracer=self.tracer))
        return evaluate(compiled, tracer=self.tracer)


#: The optimizer profile of the compatibility path (the sharded store's
#: global secondary indexes serve probes like any other architecture's).
SHARDED_PROFILE = SystemProfile(
    name="S", optimizer="heuristic", join_rewrite_depth=99,
    inequality_join="nlj", use_id_index=True, use_path_index=True,
    use_value_index=True, use_sorted_index=True,
)
