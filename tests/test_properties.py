"""Property-based tests (hypothesis) on the core invariants."""

import string

from hypothesis import given, settings, strategies as st

from repro.rng.distributions import RandomSource
from repro.rng.lcg import Lcg48
from repro.storage.dom_store import DomStore
from repro.storage.fragment_store import FragmentStore
from repro.storage.heap_store import HeapStore
from repro.storage.summary_store import SummaryStore
from repro.storage.tree_store import IndexedTreeStore, TreeStore
from repro.xmlio.canonical import canonicalize
from repro.xmlio.dom import Element, Text
from repro.xmlio.parser import parse
from repro.xmlio.serialize import serialize

# -- random XML tree strategy ---------------------------------------------------

_tag = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)
_attr_value = st.text(
    alphabet=string.ascii_letters + string.digits + " <>&\"'", max_size=12)
_text_value = st.text(
    alphabet=string.ascii_letters + string.digits + " <>&", min_size=1, max_size=20)


@st.composite
def xml_trees(draw, depth=3):
    element = Element(draw(_tag))
    for name in draw(st.lists(_tag, max_size=3, unique=True)):
        element.attributes[name] = draw(_attr_value)
    if depth > 0:
        for _ in range(draw(st.integers(0, 3))):
            if draw(st.booleans()):
                element.append(draw(xml_trees(depth=depth - 1)))
            else:
                element.append_text(draw(_text_value))
    return element


class TestXmlRoundtrip:
    @given(xml_trees())
    @settings(max_examples=120, deadline=None)
    def test_serialize_parse_roundtrip(self, tree):
        text = serialize(tree)
        reparsed = parse(text).root
        assert serialize(reparsed) == text

    @given(xml_trees())
    @settings(max_examples=80, deadline=None)
    def test_canonicalize_idempotent(self, tree):
        once = canonicalize(tree)
        assert canonicalize(parse(once).root) == once

    @given(xml_trees())
    @settings(max_examples=50, deadline=None)
    def test_unordered_canonical_invariant_under_sibling_reversal(self, tree):
        unordered = canonicalize(tree, ordered=False)
        tree.children.reverse()
        assert canonicalize(tree, ordered=False) == unordered


class TestStoreConformanceOnRandomTrees:
    @given(xml_trees())
    @settings(max_examples=30, deadline=None)
    def test_all_stores_rebuild_random_documents(self, tree):
        text = serialize(tree)
        expected = canonicalize(parse(text).root, strip_whitespace=False)
        for store_class in (DomStore, TreeStore, IndexedTreeStore,
                            SummaryStore, HeapStore, FragmentStore):
            store = store_class()
            store.load(text)
            rebuilt = store.build_dom(store.root())
            assert canonicalize(rebuilt, strip_whitespace=False) == expected, store_class

    @given(xml_trees(), _tag)
    @settings(max_examples=40, deadline=None)
    def test_descendant_counts_agree(self, tree, probe_tag):
        text = serialize(tree)
        oracle = sum(1 for _ in parse(text).root.descendants(probe_tag))
        for store_class in (TreeStore, IndexedTreeStore, SummaryStore, HeapStore):
            store = store_class()
            store.load(text)
            assert len(store.descendants_by_tag(store.root(), probe_tag)) == oracle


class TestRngProperties:
    @given(st.integers(0, 2**48 - 1))
    @settings(max_examples=40)
    def test_clone_equivalence(self, seed):
        source = RandomSource(Lcg48(seed))
        source.uniform()
        twin = source.clone()
        assert [source.uniform() for _ in range(8)] == [twin.uniform() for _ in range(8)]

    @given(st.integers(0, 2**48 - 1), st.integers(1, 1000), st.integers(0, 1000))
    @settings(max_examples=40)
    def test_sample_without_replacement_properties(self, seed, population, extra):
        source = RandomSource(Lcg48(seed))
        count = min(population, 1 + extra % population)
        sample = source.sample_without_replacement(population, count)
        assert len(set(sample)) == count
        assert all(0 <= value < population for value in sample)

    @given(st.floats(min_value=0.01, max_value=1e6), st.integers(0, 2**48 - 1))
    @settings(max_examples=40)
    def test_exponential_positive(self, mean, seed):
        source = RandomSource(Lcg48(seed))
        assert source.exponential(mean) >= 0
