"""Property-based durability invariants (hypothesis).

Random operation sequences × random crash points × shard counts 1/2/6:
whatever commit history is logged and wherever the crash lands,
``recover(snapshot + WAL suffix)`` must produce *exactly* the surviving
commit prefix of a never-crashed oracle — equal digest-chain value,
bit-identical serialization, and identical benchmark query results (a
rotating subset per example; the fixed matrix in tests/test_recovery.py
runs all twenty).

The crash point is drawn over every enumerated damage point of every
WAL stream (record boundaries plus the mid-record offset classes of
tests/faultinject.py), so shrinking walks the damage toward the start
of the log — the smallest failing example is "crash in the very first
commit", the easiest to debug.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import faultinject
from repro.benchmark.queries import QUERIES, query_text
from repro.benchmark.systems import get_profile, make_store
from repro.shard.store import ShardedStore
from repro.storage.interface import chain_digest, store_document_text
from repro.storage.wal import DurabilityManager, recover, scan_wal
from repro.storage.wal.snapshot import document_snapshot, sharded_snapshot
from repro.update.engine import apply_update
from repro.update.stream import UpdateStream
from repro.xquery.evaluator import evaluate
from repro.xquery.planner import compile_query

SHARD_CHOICES = (1, 2, 6)
PROPERTY_BACKENDS = ("F", "A")


def _build_deployment(directory: Path, document: str, shards: int,
                      n_ops: int, seed: int):
    """Log a random history; return per-prefix oracle states and the
    per-stream LSN layout."""
    if shards == 1:
        store = make_store("F")
        store.load(document)
        manager = DurabilityManager(directory, sync="commit")
        manager.initialize(document_snapshot(
            0, store.document_digest(), document))
    else:
        store = ShardedStore(shards, PROPERTY_BACKENDS)
        store.load(document)
        manager = DurabilityManager(directory, sync="commit")
        state = store.partition_state()
        manager.initialize(
            sharded_snapshot(0, store.document_digest(),
                             backends=list(store.backends),
                             fragments=store.shard_fragment_texts(),
                             extent_seqs=state["extent_seqs"],
                             id_map=state["id_map"]),
            streams=shards, shard_backends=list(store.backends))
    stream = UpdateStream(store, seed=seed)
    states = [(store.document_digest(), store_document_text(store))]
    for _ in range(n_ops):
        op = stream.next_op()
        stream.note_applied(op)
        prev = store.document_digest()
        manager.log_commit(
            [op], kind="op", prev_digest=prev,
            digest=chain_digest(prev, op.token()),
            stream=store.route_op(op) if shards > 1 else 0)
        apply_update(store, op)
        states.append((store.document_digest(), store_document_text(store)))
    manager.close()
    return states


def _enumerate_crashes(directory: Path, shards: int):
    """Every (stream file, crash point, global cut LSN) triple."""
    crashes = []
    for index in range(shards):
        path = directory / "wal" / f"stream-{index:04d}.wal"
        if not path.exists():
            continue
        lsns = [record.lsn for record in scan_wal(path).records]
        for point in faultinject.crash_points(path.read_bytes()):
            crashes.append((path, point, lsns[point.survivors]))
    return crashes


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(shards=st.sampled_from(SHARD_CHOICES),
       n_ops=st.integers(min_value=2, max_value=7),
       seed=st.integers(min_value=0, max_value=2 ** 16),
       crash_choice=st.integers(min_value=0, max_value=2 ** 16))
def test_recovery_always_yields_the_surviving_prefix(
        tiny_text, shards, n_ops, seed, crash_choice):
    workdir = Path(tempfile.mkdtemp(prefix="walprop-"))
    try:
        deploy = workdir / "deploy"
        states = _build_deployment(deploy, tiny_text, shards, n_ops, seed)
        crashes = _enumerate_crashes(deploy, shards)
        assert crashes, "a non-empty history always has crash points"
        path, point, cut_lsn = crashes[crash_choice % len(crashes)]
        faultinject.apply_crash(path, point)

        report = recover(deploy)
        digest, document = states[cut_lsn - 1]
        where = f"{path.name} {point.label}@{point.offset} cut={cut_lsn}"
        # 1. prefix exactness: digest chain and serialization
        assert report.digest == digest, where
        assert report.document == document, where
        assert report.last_lsn == cut_lsn - 1, where
        # 2. the recovered digest is verifiable state, not bookkeeping:
        #    query results equal the oracle prefix (rotating subset)
        numbers = sorted(QUERIES)
        chosen = [numbers[(seed + offset) % len(numbers)]
                  for offset in (0, 7, 13)]
        oracle = make_store("F")
        oracle.load(document)
        recovered = make_store("F")
        recovered.load(report.document)
        for number in set(chosen):
            expected = evaluate(compile_query(
                query_text(number), oracle, get_profile("F"))).serialize()
            got = evaluate(compile_query(
                query_text(number), recovered, get_profile("F"))).serialize()
            assert got == expected, f"Q{number} diverged after {where}"
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(shards=st.sampled_from(SHARD_CHOICES),
       n_ops=st.integers(min_value=1, max_value=6),
       seed=st.integers(min_value=0, max_value=2 ** 16))
def test_clean_recovery_is_exact(tiny_text, shards, n_ops, seed):
    """No crash at all: recovery replays the full history exactly."""
    workdir = Path(tempfile.mkdtemp(prefix="walprop-"))
    try:
        deploy = workdir / "deploy"
        states = _build_deployment(deploy, tiny_text, shards, n_ops, seed)
        report = recover(deploy)
        digest, document = states[-1]
        assert report.replayed == n_ops
        assert report.skipped == 0 and not report.torn_tails
        assert report.digest == digest
        assert report.document == document
        if shards > 1:
            assert report.sharded_store is not None
            assert store_document_text(report.sharded_store) == document
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
