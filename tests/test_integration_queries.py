"""The central integration test: all 20 queries, all 7 systems, one answer.

Every query is executed on every architecture and the canonical results must
agree pairwise; selected queries are additionally checked against values
computed independently from the DOM (the oracle never touches the query
engine).
"""

import pytest

from repro.benchmark.equivalence import check_equivalence
from repro.benchmark.queries import QUERIES
from repro.benchmark.systems import SYSTEMS, get_profile
from repro.xquery.evaluator import evaluate
from repro.xquery.planner import compile_query

ALL_SYSTEMS = tuple(sorted(SYSTEMS))


@pytest.fixture(scope="module")
def results(loaded_stores):
    """(system, query) -> QueryResult for the whole matrix."""
    out = {}
    for system in ALL_SYSTEMS:
        store = loaded_stores[system]
        profile = get_profile(system)
        for number in QUERIES:
            compiled = compile_query(QUERIES[number].text, store, profile)
            out[(system, number)] = evaluate(compiled)
    return out


@pytest.mark.parametrize("number", sorted(QUERIES))
def test_cross_system_equivalence(results, number):
    per_system = {s: results[(s, number)] for s in ALL_SYSTEMS}
    report = check_equivalence(number, per_system, reference="G")
    assert report.ok, f"Q{number} disagreement: {report.disagreeing}"


class TestOracles:
    """Selected queries checked against DOM-derived ground truth."""

    def test_q1_person0_name(self, results, small_document):
        expected = None
        for person in small_document.root.find("people").find_all("person"):
            if person.get("id") == "person0":
                expected = person.find("name").immediate_text()
        assert results[("G", 1)].items == [expected]

    def test_q2_one_increase_per_auction(self, results, small_document):
        auctions = small_document.root.find("open_auctions").find_all("open_auction")
        assert len(results[("G", 2)]) == len(auctions)

    def test_q5_count_oracle(self, results, small_document):
        expected = sum(
            1 for ca in small_document.root.find("closed_auctions").find_all("closed_auction")
            if float(ca.find("price").immediate_text()) >= 40
        )
        assert results[("G", 5)].items == [expected]

    def test_q6_item_count_oracle(self, results, small_document):
        expected = sum(1 for _ in small_document.root.find("regions").iter("item"))
        assert results[("G", 6)].items == [expected]

    def test_q7_prose_count_oracle(self, results, small_document):
        root = small_document.root
        expected = (sum(1 for _ in root.iter("description"))
                    + sum(1 for _ in root.iter("annotation"))
                    + sum(1 for _ in root.iter("emailaddress")))
        assert results[("G", 7)].items == [float(expected)]

    def test_q8_purchase_counts_oracle(self, results, small_document):
        root = small_document.root
        bought: dict[str, int] = {}
        for auction in root.find("closed_auctions").find_all("closed_auction"):
            buyer = auction.find("buyer").get("person")
            bought[buyer] = bought.get(buyer, 0) + 1
        total_from_query = 0
        for item in results[("G", 8)].items:
            element = item.handle
            total_from_query += int(element.text_content())
        assert total_from_query == sum(bought.values())

    def test_q10_group_count_matches_distinct_interests(self, results, small_document):
        interests = {
            interest.get("category")
            for interest in small_document.root.find("people").iter("interest")
        }
        assert len(results[("G", 10)]) == len(interests)

    def test_q13_australia_items(self, results, small_document):
        expected = len(small_document.root.find("regions").find("australia").find_all("item"))
        assert len(results[("G", 13)]) == expected

    def test_q14_gold_items_oracle(self, results, small_document):
        expected = sum(
            1 for item in small_document.root.find("regions").iter("item")
            if "gold" in item.find("description").text_content()
        )
        assert len(results[("G", 14)]) == expected

    def test_q15_q16_consistency(self, results, small_document):
        # Q16 returns the auctions whose Q15-path is non-empty; each such
        # auction contributes >= 1 keyword to Q15.
        assert len(results[("G", 15)]) >= len(results[("G", 16)]) > 0

    def test_q17_no_homepage_oracle(self, results, small_document):
        expected = sum(
            1 for person in small_document.root.find("people").find_all("person")
            if person.find("homepage") is None
        )
        assert len(results[("G", 17)]) == expected

    def test_q18_converts_reserves(self, results, small_document):
        reserves = [
            float(a.find("reserve").immediate_text())
            for a in small_document.root.find("open_auctions").find_all("open_auction")
            if a.find("reserve") is not None
        ]
        values = results[("G", 18)].items
        assert len(values) == len(reserves)
        for value, reserve in zip(values, sorted(reserves, key=reserves.index)):
            assert abs(value - 2.20371 * reserve) < 1e-9

    def test_q19_sorted_by_location(self, results):
        locations = [
            item.handle.text_content()
            for item in results[("G", 19)].items
        ]
        # <item name="..">location</item>: text content is the location.
        assert locations == sorted(locations)

    def test_q20_buckets_partition_persons(self, results, small_document):
        wrapper = results[("G", 20)].items[0].handle
        buckets = {child.tag: int(child.text_content()) for child in wrapper.child_elements()}
        persons = len(small_document.root.find("people").find_all("person"))
        assert set(buckets) == {"preferred", "standard", "challenge", "na"}
        assert sum(buckets.values()) == persons

    def test_q12_subset_of_q11(self, results):
        assert len(results[("G", 12)]) <= len(results[("G", 11)])

    def test_q3_subset_of_q2(self, results):
        assert len(results[("G", 3)]) <= len(results[("G", 2)])

    def test_q4_histories_exist(self, results):
        # The generator's anchor bidders guarantee at least the possibility;
        # at this scale the result may legitimately be empty, but the query
        # must execute on all systems (covered by equivalence above).
        assert results[("G", 4)] is not None
