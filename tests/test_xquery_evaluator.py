"""Evaluator semantics on small handcrafted documents (DomStore-backed)."""

import pytest

from repro.errors import QueryError
from repro.storage.dom_store import DomStore
from repro.xquery.evaluator import evaluate
from repro.xquery.planner import SystemProfile, compile_query

NAIVE = SystemProfile(name="test", optimizer="none", join_rewrite_depth=0,
                      use_id_index=False)

DOC = """
<site>
  <people>
    <person id="p0"><name>Ann</name><age>30</age></person>
    <person id="p1"><name>Bob</name></person>
    <person id="p2"><name>Cid</name><age>25</age></person>
  </people>
  <items>
    <item price="10"><tag>red</tag><tag>blue</tag></item>
    <item price="20"><tag>blue</tag></item>
  </items>
</site>
"""


@pytest.fixture(scope="module")
def store():
    dom = DomStore()
    dom.load(DOC)
    return dom


def run(store, query, profile=NAIVE):
    return evaluate(compile_query(query, store, profile))


class TestPaths:
    def test_absolute_child_path(self, store):
        result = run(store, "/site/people/person/name/text()")
        assert result.items == ["Ann", "Bob", "Cid"]

    def test_descendant_path(self, store):
        result = run(store, "/site//tag/text()")
        assert result.items == ["red", "blue", "blue"]

    def test_attribute_step(self, store):
        result = run(store, "/site/people/person/@id")
        assert result.items == ["p0", "p1", "p2"]

    def test_predicate_filter(self, store):
        result = run(store, '/site/people/person[@id = "p1"]/name/text()')
        assert result.items == ["Bob"]

    def test_positional_predicate(self, store):
        assert run(store, "/site/people/person[2]/name/text()").items == ["Bob"]

    def test_last_predicate(self, store):
        assert run(store, "/site/people/person[last()]/name/text()").items == ["Cid"]

    def test_existence_predicate(self, store):
        result = run(store, "/site/people/person[age]/name/text()")
        assert result.items == ["Ann", "Cid"]

    def test_missing_path_empty(self, store):
        assert run(store, "/site/nothing/here").items == []

    def test_wrong_root_tag_empty(self, store):
        assert run(store, "/wrong/people").items == []

    def test_filter_on_variable(self, store):
        result = run(store, "for $p in /site/people/person return $p[1]/name/text()")
        assert result.items == ["Ann", "Bob", "Cid"]


class TestComparisonsAndArithmetic:
    def test_numeric_string_casting(self, store):
        result = run(store, '/site/people/person[age >= 30]/name/text()')
        assert result.items == ["Ann"]

    def test_general_comparison_existential(self, store):
        result = run(store, 'for $i in /site/items/item where $i/tag = "red" return $i/@price')
        assert result.items == ["10"]

    def test_arithmetic(self, store):
        assert run(store, "1 + 2 * 3").items == [7]
        assert run(store, "10 div 4").items == [2.5]
        assert run(store, "10 mod 4").items == [2]
        assert run(store, "-(3 - 5)").items == [2]

    def test_arithmetic_empty_propagation(self, store):
        assert run(store, "/site/missing * 2").items == []

    def test_equality_string_vs_number(self, store):
        assert run(store, '"10" = 10').items == [True]
        assert run(store, '"x" = 10').items == [False]

    def test_boolean_operators(self, store):
        assert run(store, "1 = 1 and 2 = 2").items == [True]
        assert run(store, "1 = 2 or 2 = 2").items == [True]
        assert run(store, "1 = 2 and 2 = 2").items == [False]


class TestFLWOR:
    def test_let_binding(self, store):
        result = run(store, "let $n := count(/site/people/person) return $n * 2")
        assert result.items == [6]

    def test_where_filters(self, store):
        result = run(store, 'for $p in /site/people/person where empty($p/age) '
                            'return $p/name/text()')
        assert result.items == ["Bob"]

    def test_nested_for_cartesian(self, store):
        result = run(store, "for $a in /site/people/person, $b in /site/items/item "
                            "return $a/@id")
        assert len(result.items) == 6

    def test_order_by_string(self, store):
        result = run(store, "for $p in /site/people/person "
                            "order by $p/name/text() descending return $p/name/text()")
        assert result.items == ["Cid", "Bob", "Ann"]

    def test_order_by_numeric(self, store):
        result = run(store, "for $p in /site/people/person[age] "
                            "order by $p/age/text() return $p/name/text()")
        assert result.items == ["Cid", "Ann"]  # 25 < 30 numerically

    def test_order_by_empty_keys_first(self, store):
        result = run(store, "for $p in /site/people/person "
                            "order by $p/age/text() return $p/name/text()")
        assert result.items == ["Bob", "Cid", "Ann"]

    def test_if_expr(self, store):
        result = run(store, "if (count(/site/people/person) > 2) then \"many\" else \"few\"")
        assert result.items == ["many"]


class TestQuantified:
    def test_some_true(self, store):
        result = run(store, 'some $t in /site/items/item/tag satisfies $t/text() = "red"')
        assert result.items == [True]

    def test_some_false(self, store):
        result = run(store, 'some $t in /site/items/item/tag satisfies $t/text() = "green"')
        assert result.items == [False]

    def test_every(self, store):
        result = run(store, 'every $i in /site/items/item satisfies $i/@price > 5')
        assert result.items == [True]

    def test_before_operator(self, store):
        result = run(store, "some $a in /site/items/item[1]/tag[1], "
                            "$b in /site/items/item[1]/tag[2] satisfies $a << $b")
        assert result.items == [True]
        result = run(store, "some $a in /site/items/item[1]/tag[2], "
                            "$b in /site/items/item[1]/tag[1] satisfies $a << $b")
        assert result.items == [False]


class TestConstructors:
    def test_attribute_template(self, store):
        result = run(store, 'for $p in /site/people/person[1] '
                            'return <x name="{$p/name/text()}"/>')
        assert result.serialize() == '<x name="Ann"/>'

    def test_node_copy_into_content(self, store):
        result = run(store, "for $p in /site/people/person[1] return <w>{$p/name}</w>")
        assert result.serialize() == "<w><name>Ann</name></w>"

    def test_atomics_space_separated(self, store):
        result = run(store, "<c>{/site/people/person/@id}</c>")
        assert result.serialize() == "<c>p0 p1 p2</c>"

    def test_nested_constructors(self, store):
        result = run(store, "<out><inner>{1 + 1}</inner></out>")
        assert result.serialize() == "<out><inner>2</inner></out>"

    def test_count_in_constructor(self, store):
        result = run(store, "<n>{count(/site/people/person)}</n>")
        assert result.serialize() == "<n>3</n>"


class TestFunctions:
    def test_count_empty_string(self, store):
        assert run(store, "count(/site/people/person)").items == [3]
        assert run(store, "empty(/site/nothing)").items == [True]
        assert run(store, "string(/site/people/person[1]/name)").items == ["Ann"]

    def test_contains(self, store):
        assert run(store, 'contains("gold ring", "gold")').items == [True]
        assert run(store, 'contains(/site/people/person[1]/name, "nn")').items == [True]

    def test_not(self, store):
        assert run(store, "not(empty(/site/people))").items == [True]

    def test_sum(self, store):
        assert run(store, "sum(/site/items/item/@price)").items == [30.0]

    def test_distinct_values(self, store):
        result = run(store, "distinct-values(/site/items/item/tag/text())")
        assert result.items == ["red", "blue"]

    def test_zero_or_one(self, store):
        assert run(store, "zero-or-one(/site/missing)").items == []
        with pytest.raises(QueryError):
            run(store, "zero-or-one(/site/people/person)")

    def test_exactly_one(self, store):
        assert run(store, "exactly-one(/site/people)").items != []
        with pytest.raises(QueryError):
            run(store, "exactly-one(/site/missing)")

    def test_unknown_function(self, store):
        with pytest.raises(QueryError):
            run(store, "made-up(1)")

    def test_udf(self, store):
        result = run(store, "declare function local:twice($v) { 2 * $v }; "
                            "local:twice(count(/site/items/item))")
        assert result.items == [4.0]

    def test_udf_wrong_arity(self, store):
        with pytest.raises(QueryError):
            run(store, "declare function local:f($v) { $v }; local:f(1, 2)")

    def test_unbound_variable(self, store):
        with pytest.raises(QueryError):
            run(store, "$nope")


class TestResult:
    def test_serialize_mixed(self, store):
        result = run(store, "for $p in /site/people/person[1] return $p/name")
        assert result.serialize() == "<name>Ann</name>"

    def test_canonical_unordered(self, store):
        a = run(store, "for $p in /site/people/person return <p>{$p/@id}</p>")
        assert a.canonical(ordered=False) == a.canonical(ordered=False)
        assert len(a) == 3
