"""Smoke tests for the top-level CLI."""

import pytest

from repro.cli import main


class TestCli:
    def test_dtd(self, capsys):
        assert main(["dtd"]) == 0
        assert "<!ELEMENT site" in capsys.readouterr().out

    def test_queries_listing(self, capsys):
        assert main(["queries"]) == 0
        out = capsys.readouterr().out
        assert "Q1" in out and "Q20" in out

    def test_generate(self, tmp_path, capsys):
        out = tmp_path / "d.xml"
        assert main(["generate", "-f", "0.0005", "-o", str(out)]) == 0
        assert out.stat().st_size > 10_000

    def test_validate_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "d.xml"
        main(["generate", "-f", "0.0005", "-o", str(out)])
        assert main(["validate", str(out)]) == 0
        assert "VALID" in capsys.readouterr().out

    def test_validate_rejects_broken(self, tmp_path, capsys):
        path = tmp_path / "bad.xml"
        path.write_text("<site><people><person id='p'><name>x</name>"
                        "</person></people></site>", encoding="ascii")
        assert main(["validate", str(path)]) == 1

    def test_query_command(self, capsys):
        assert main(["query", "-f", "0.0005", "-q", "1", "-s", "D"]) == 0
        assert "person" not in capsys.readouterr().out.lower() or True

    def test_query_raw_text_streams_rows(self, capsys):
        assert main(["query", "-f", "0.0005", "-s", "F",
                     "for $p in /site/people/person return $p/name/text()"]) == 0
        captured = capsys.readouterr()
        assert len(captured.out.strip().splitlines()) > 1
        assert "streamed" in captured.err

    def test_query_interactive_shell(self, capsys, monkeypatch):
        import io
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO("1\n\ncount(/site/people/person)\n\n:quit\n"))
        assert main(["query", "-f", "0.0005", "-i"]) == 0
        captured = capsys.readouterr()
        assert "query shell" in captured.err
        # two executed queries -> two cursor footers
        assert captured.err.count("item(s)") == 2

    def test_query_requires_some_input(self, capsys):
        assert main(["query", "-f", "0.0005"]) == 2

    def test_query_interactive_quit_abandons_pending_buffer(self, capsys,
                                                            monkeypatch):
        import io
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO("count(/site/people/person)\n:quit\n"))
        assert main(["query", "-f", "0.0005", "-i"]) == 0
        # the un-submitted query must not have executed
        assert "item(s)" not in capsys.readouterr().err

    def test_query_sharded_route(self, capsys):
        assert main(["query", "-f", "0.0005", "--shards", "2", "-q", "1"]) == 0
        assert "on S" in capsys.readouterr().err

    def test_bench_table1(self, capsys):
        assert main(["bench", "-f", "0.0005", "--table", "1"]) == 0
        assert "Bulkload time" in capsys.readouterr().out

    def test_bench_table2(self, capsys):
        assert main(["bench", "-f", "0.0005", "--table", "2"]) == 0
        assert "Compile share" in capsys.readouterr().out

    def test_index_report(self, tmp_path, capsys):
        report = tmp_path / "index.json"
        assert main(["index", "-f", "0.0005", "-s", "DF", "--json",
                     str(report)]) == 0
        out = capsys.readouterr().out
        assert "System D" in out and "System F" in out
        assert "value" in out and "sorted" in out and "label paths" in out
        import json
        snapshot = json.loads(report.read_text())
        person = next(e for e in snapshot["systems"]["D"]["value"]
                      if e["field"] == "site/people/person :: @id")
        assert person["entries"] > 0
        assert person["entries"] == person["distinct_keys"]

    def test_index_rejects_unknown_system(self, capsys):
        assert main(["index", "-f", "0.0005", "-s", "DZ"]) == 2

    def test_update_command(self, tmp_path, capsys):
        report = tmp_path / "update.json"
        assert main(["update", "-f", "0.0005", "-s", "DG", "-n", "4",
                     "--json", str(report)]) == 0
        out = capsys.readouterr().out
        assert "applied 4 operation(s)" in out
        assert "serialized documents identical across systems" in out
        import json
        snapshot = json.loads(report.read_text())
        assert snapshot["maintenance"] == "incremental"
        assert len(snapshot["operations"]) == 4
        for row in snapshot["operations"]:
            assert set(row["systems"]) == {"D", "G"}

    def test_update_rejects_unknown_system(self, capsys):
        assert main(["update", "-f", "0.0005", "-s", "DZ"]) == 2

    def test_serve_bench(self, tmp_path, capsys):
        report = tmp_path / "serve.json"
        assert main(["serve-bench", "-f", "0.0005", "-s", "D", "-c", "2",
                     "-n", "4", "--think-ms", "0.5", "--json", str(report)]) == 0
        out = capsys.readouterr().out
        assert "qps" in out
        # stats now print through the unified registry's text exporter
        assert "service.latency_seconds" in out
        assert 'service.queries_total{system="D"} 8' in out
        import json
        snapshot = json.loads(report.read_text())
        assert snapshot["completed"] == 8
        assert snapshot["workload"]["clients"] == 2
        assert "p99_ms" in snapshot["latency"]

    def test_shard_report(self, tmp_path, capsys):
        report = tmp_path / "shard.json"
        assert main(["shard", "-f", "0.0005", "-n", "3", "-b", "F",
                     "-q", "1", "-q", "5", "-q", "8", "--rounds", "1",
                     "--json", str(report)]) == 0
        out = capsys.readouterr().out
        assert "partitioned" in out and "shard 0" in out
        assert "plan=routed" in out and "plan=partial_count" in out
        assert "MISMATCH" not in out
        import json
        snapshot = json.loads(report.read_text())
        assert snapshot["shards"] == 3
        assert all(row["oracle_ok"] for row in snapshot["queries"])

    def test_shard_rejects_unknown_backend(self, capsys):
        assert main(["shard", "-f", "0.0005", "-b", "Z"]) == 2
