"""Seeded resource-hygiene violation: an inline handle with no owner."""

import json


def read_config(path):
    return json.load(open(path))      # resource-hygiene: leaks on error
