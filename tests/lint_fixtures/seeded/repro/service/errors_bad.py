"""Seeded error-taxonomy violations: swallowed except, builtin raise."""


def lookup(payload):
    try:
        return payload["key"]
    except Exception:                 # error-taxonomy: silent swallow
        return None


def reject(flag):
    if flag:
        raise ValueError("bad flag")  # error-taxonomy: builtin raise
    return flag
