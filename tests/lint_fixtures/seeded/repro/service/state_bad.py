"""Seeded shared-state violation: a locked class writing lock-free."""

import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}

    def put(self, key, value):
        self._items[key] = value      # shared-state: write without the lock

    def get(self, key):
        with self._lock:
            return self._items.get(key)
