"""Seeded lock-discipline violation: an A/B order inversion."""

import threading


class Transfer:
    def __init__(self):
        self._debit = threading.Lock()
        self._credit = threading.Lock()

    def forward(self):
        with self._debit:
            with self._credit:        # order: debit -> credit
                return True

    def backward(self):
        with self._credit:
            with self._debit:         # inversion: credit -> debit
                return True
