"""Seeded async-blocking violations: the event loop must never block."""

import threading
import time

_flush_lock = threading.Lock()


async def handle(request):
    time.sleep(0.01)            # async-blocking: blocking sleep on the loop
    with _flush_lock:           # async-blocking: threading lock in async def
        return request


async def routed(request, loop, pool):
    def flush():                # nested sync def = routed through the pool:
        time.sleep(0.01)        # legal — never runs on the event loop
        with _flush_lock:
            return request
    return await loop.run_in_executor(pool, flush)
