"""Suppressed shared-state variant: a justified monotonic latch."""

import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._sealed = False

    def seal(self):
        # lint: ok(shared-state) — monotonic latch, losers are harmless
        self._sealed = True

    def sealed(self):
        with self._lock:
            return self._sealed
