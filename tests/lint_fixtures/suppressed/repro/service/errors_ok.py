"""Suppressed error-taxonomy variants with justified markers."""


def lookup(payload):
    try:
        return payload["key"]
    # lint: ok(error-taxonomy) — best-effort probe, absence is the answer
    except Exception:
        return None


def reject(flag):
    if flag:
        # lint: ok(error-taxonomy) — argument validation at the API edge
        raise ValueError("bad flag")
    return flag
