"""Suppressed async-blocking variant: justified inline markers."""

import threading
import time

_flush_lock = threading.Lock()


async def handle(request):
    # lint: ok(async-blocking) — startup-only path, loop not serving yet
    time.sleep(0.01)
    # lint: ok(async-blocking) — uncontended init lock, bounded hold
    with _flush_lock:
        return request
