"""Suppressed resource-hygiene variant with a justified marker."""

import json


def read_config(path):
    # lint: ok(resource-hygiene) — process-lifetime config read at boot
    return json.load(open(path))
