"""Tests for the XQuery lexer and parser."""

import pytest

from repro.errors import QuerySyntaxError
from repro.xquery.ast import (
    Arithmetic, BoolOp, Comparison, ContextItem, ElementCtor, FLWOR,
    ForClause, FunctionCall, IfExpr, LetClause, Literal, Path, Quantified,
    Step, Unary, VarRef,
)
from repro.xquery.lexer import Lexer
from repro.xquery.parser import parse_query


def body(text):
    return parse_query(text).body


class TestLexer:
    def test_token_stream(self):
        lexer = Lexer('for $x in /a return $x')
        kinds = []
        while True:
            token = lexer.next()
            if token.kind == "eof":
                break
            kinds.append((token.kind, token.value))
        assert kinds == [
            ("name", "for"), ("variable", "x"), ("name", "in"),
            ("symbol", "/"), ("name", "a"), ("name", "return"), ("variable", "x"),
        ]

    def test_multichar_symbols(self):
        lexer = Lexer("<< := != <= >= //")
        values = [lexer.next().value for _ in range(6)]
        assert values == ["<<", ":=", "!=", "<=", ">=", "//"]

    def test_numbers(self):
        lexer = Lexer("42 3.14")
        assert lexer.next().value == "42"
        assert lexer.next().value == "3.14"

    def test_strings_both_quotes(self):
        lexer = Lexer("\"dquote\" 'squote'")
        assert lexer.next().value == "dquote"
        assert lexer.next().value == "squote"

    def test_comments_skipped(self):
        lexer = Lexer("a (: comment (: not nested :) b")
        assert lexer.next().value == "a"
        assert lexer.next().value == "b"

    def test_qname(self):
        assert Lexer("local:convert").next().value == "local:convert"

    def test_error_position(self):
        with pytest.raises(QuerySyntaxError) as excinfo:
            list_all = Lexer("a\n  #")
            while list_all.next().kind != "eof":
                pass
        assert excinfo.value.line == 2


class TestParserBasics:
    def test_literal(self):
        assert body("42") == Literal(42)
        assert body('"hi"') == Literal("hi")
        assert body("3.5") == Literal(3.5)

    def test_variable(self):
        assert body("$x") == VarRef("x")

    def test_arithmetic_precedence(self):
        node = body("1 + 2 * 3")
        assert isinstance(node, Arithmetic) and node.op == "+"
        assert isinstance(node.right, Arithmetic) and node.right.op == "*"

    def test_div_mod_keywords(self):
        node = body("4 div 2 mod 3")
        assert node.op == "mod"
        assert node.left.op == "div"

    def test_unary_minus(self):
        node = body("-5")
        assert isinstance(node, Unary)

    def test_comparison(self):
        node = body("$a <= $b")
        assert isinstance(node, Comparison) and node.op == "<="

    def test_before_operator(self):
        node = body("$a << $b")
        assert node.op == "<<"

    def test_and_or(self):
        node = body("$a and $b or $c")
        assert isinstance(node, BoolOp) and node.op == "or"
        assert isinstance(node.operands[0], BoolOp)

    def test_if_expr(self):
        node = body("if ($a) then 1 else 2")
        assert isinstance(node, IfExpr)


class TestParserPaths:
    def test_absolute_path(self):
        node = body("/site/people/person")
        assert isinstance(node, Path) and node.root is None
        assert [s.name for s in node.steps] == ["site", "people", "person"]
        assert all(s.axis == "child" for s in node.steps)

    def test_descendant_axis(self):
        node = body("/site//item")
        assert node.steps[1].axis == "descendant"

    def test_attribute_and_text_steps(self):
        node = body("$b/name/text()")
        assert node.steps[-1].axis == "text"
        node = body("$b/@id")
        assert node.steps[-1].axis == "attribute"
        assert node.steps[-1].name == "id"

    def test_predicates(self):
        node = body('/site/people/person[@id = "p0"]')
        predicate = node.steps[-1].predicates[0]
        assert isinstance(predicate, Comparison)
        assert isinstance(predicate.left, Path)
        assert isinstance(predicate.left.root, ContextItem)

    def test_positional_predicate(self):
        node = body("$b/bidder[1]")
        assert node.steps[-1].predicates == [Literal(1)]

    def test_last_predicate(self):
        node = body("$b/bidder[last()]")
        assert isinstance(node.steps[-1].predicates[0], FunctionCall)

    def test_document_function_root(self):
        node = body('document("auction.xml")/site')
        assert isinstance(node.root, FunctionCall)
        assert node.root.name == "document"

    def test_bare_name_in_predicate_is_context_path(self):
        node = body("$p[name]")
        predicate = node.steps[0].predicates[0]
        assert isinstance(predicate, Path)
        assert isinstance(predicate.root, ContextItem)


class TestParserFLWOR:
    def test_for_let_where_return(self):
        node = body("for $a in /x let $b := $a/y where $b > 1 return $b")
        assert isinstance(node, FLWOR)
        assert isinstance(node.clauses[0], ForClause)
        assert isinstance(node.clauses[1], LetClause)
        assert node.where is not None

    def test_multiple_for_vars(self):
        node = body("for $a in /x, $b in /y return 1")
        assert len(node.clauses) == 2

    def test_order_by(self):
        node = body("for $a in /x order by $a/k descending return $a")
        assert node.order[0].descending

    def test_quantified(self):
        node = body("some $a in /x, $b in /y satisfies $a << $b")
        assert isinstance(node, Quantified)
        assert len(node.bindings) == 2

    def test_nested_flwor_in_return(self):
        node = body("for $a in /x return let $b := 1 return $b")
        assert isinstance(node.ret, FLWOR)


class TestParserConstructors:
    def test_empty_constructor(self):
        node = body('<history/>')
        assert isinstance(node, ElementCtor)
        assert node.tag == "history" and not node.content

    def test_text_content(self):
        node = body("<a>hello</a>")
        assert node.content == ["hello"]

    def test_embedded_expression(self):
        node = body("<a>{$x}</a>")
        assert isinstance(node.content[0], VarRef)

    def test_attribute_value_template(self):
        node = body('<a name="{$p/name/text()}" fixed="k"/>')
        assert node.attributes[0].name == "name"
        assert isinstance(node.attributes[0].parts[0], Path)
        assert node.attributes[1].parts == ["k"]

    def test_nested_constructors(self):
        node = body("<a><b>{1}</b><c/></a>")
        assert isinstance(node.content[0], ElementCtor)
        assert isinstance(node.content[1], ElementCtor)

    def test_mismatched_close_raises(self):
        with pytest.raises(QuerySyntaxError):
            body("<a></b>")

    def test_brace_escapes(self):
        node = body("<a>left {{ right }}</a>")
        assert node.content == ["left { right }"]


class TestParserFunctions:
    def test_udf_declaration(self):
        query = parse_query(
            "declare function local:double($v) { $v * 2 }; local:double(21)")
        assert "local:double" in query.functions
        assert query.functions["local:double"].params == ["v"]
        assert isinstance(query.body, FunctionCall)

    def test_call_arity(self):
        node = body("contains($a, \"gold\")")
        assert len(node.args) == 2

    @pytest.mark.parametrize("bad", [
        "for $x return 1",          # missing 'in'
        "let $x = 1 return $x",     # '=' instead of ':='
        "for $x in /a",             # missing return
        "1 +",                      # dangling operator
        "<a>",                      # unterminated constructor
        "$x[",                      # unterminated predicate
        "for x in /a return 1",     # missing $
        "1 2",                      # trailing junk
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_query(bad)
