"""Tests for the document generator: determinism, scaling, validity, split mode."""

import os

import pytest

from repro.errors import GenerationError
from repro.schema.auction import REFERENCE_TARGETS, auction_dtd, auction_split_dtd
from repro.schema.validator import validate
from repro.xmlgen.cli import main as xmlgen_main
from repro.xmlgen.config import GeneratorConfig
from repro.xmlgen.counts import (
    BASE_CLOSED_AUCTIONS, BASE_OPEN_AUCTIONS, BASE_PERSONS, EntityCounts,
)
from repro.xmlgen.generator import ANCHOR_WORDS, XMarkGenerator, generate_string
from repro.xmlio.parser import parse


class TestConfig:
    def test_rejects_bad_scale(self):
        with pytest.raises(GenerationError):
            GeneratorConfig(scale=0)
        with pytest.raises(GenerationError):
            GeneratorConfig(scale=-1)
        with pytest.raises(GenerationError):
            GeneratorConfig(scale=101)

    def test_rejects_bad_split(self):
        with pytest.raises(GenerationError):
            GeneratorConfig(scale=1, entities_per_file=0)


class TestCounts:
    def test_base_counts_at_scale_one(self):
        counts = EntityCounts.for_scale(1.0)
        assert counts.persons == BASE_PERSONS
        assert counts.open_auctions == BASE_OPEN_AUCTIONS
        assert counts.closed_auctions == BASE_CLOSED_AUCTIONS
        assert counts.items == BASE_OPEN_AUCTIONS + BASE_CLOSED_AUCTIONS

    def test_items_equal_sum_of_auctions_at_every_scale(self):
        # Paper Section 4.5: "the number of items organized by continents
        # equals the sum of open and closed auctions".
        for scale in (0.0001, 0.003, 0.01, 0.1, 1.0, 2.0):
            counts = EntityCounts.for_scale(scale)
            assert counts.items == counts.open_auctions + counts.closed_auctions

    def test_region_allocation_sums_and_minimums(self):
        for scale in (0.0001, 0.001, 0.05):
            counts = EntityCounts.for_scale(scale)
            assert sum(c for _, c in counts.region_items) == counts.items
            assert all(c >= 1 for _, c in counts.region_items)

    def test_linear_scaling(self):
        one = EntityCounts.for_scale(0.01)
        ten = EntityCounts.for_scale(0.1)
        assert abs(ten.persons / one.persons - 10) < 0.2

    def test_region_of_item_consistent_with_offsets(self):
        counts = EntityCounts.for_scale(0.002)
        offsets = counts.region_offsets()
        for region, count in counts.region_items:
            first = offsets[region]
            assert counts.region_of_item(first) == region
            assert counts.region_of_item(first + count - 1) == region
        with pytest.raises(IndexError):
            counts.region_of_item(counts.items)

    def test_namerica_largest_region(self):
        counts = EntityCounts.for_scale(0.01)
        allocation = dict(counts.region_items)
        assert allocation["namerica"] == max(allocation.values())


class TestGenerator:
    def test_deterministic(self):
        assert generate_string(0.0005) == generate_string(0.0005)

    def test_seed_changes_output(self):
        default = generate_string(0.0005)
        other = XMarkGenerator(GeneratorConfig(0.0005, seed=7)).generate_string()
        assert default != other

    def test_document_is_dtd_valid(self, small_document):
        report = validate(small_document, auction_dtd(), REFERENCE_TARGETS)
        assert report.ok, report.violations[:5]

    def test_size_calibration(self):
        # Figure 3: scale f ~ 100 MB * f, within 15%.
        for scale in (0.001, 0.005):
            size = len(generate_string(scale))
            assert abs(size / (100e6 * scale) - 1.0) < 0.15

    def test_size_scales_linearly(self):
        small = len(generate_string(0.001))
        large = len(generate_string(0.004))
        assert 3.0 < large / small < 5.0

    def test_entity_counts_in_document(self, small_document):
        counts = EntityCounts.for_scale(0.002)
        root = small_document.root
        assert len(root.find("people").find_all("person")) == counts.persons
        assert len(root.find("open_auctions").find_all("open_auction")) == counts.open_auctions
        assert len(root.find("closed_auctions").find_all("closed_auction")) == counts.closed_auctions
        assert len(root.find("categories").find_all("category")) == counts.categories
        assert sum(1 for _ in root.find("regions").iter("item")) == counts.items

    def test_item_partition_between_auction_kinds(self, small_document):
        root = small_document.root
        counts = EntityCounts.for_scale(0.002)
        closed_refs = {
            ca.find("itemref").get("item")
            for ca in root.find("closed_auctions").find_all("closed_auction")
        }
        open_refs = {
            oa.find("itemref").get("item")
            for oa in root.find("open_auctions").find_all("open_auction")
        }
        assert not (closed_refs & open_refs)
        assert len(closed_refs) == counts.closed_auctions
        assert len(open_refs) == counts.open_auctions

    def test_current_equals_initial_plus_increases(self, small_document):
        for auction in small_document.root.find("open_auctions").find_all("open_auction"):
            initial = float(auction.find("initial").immediate_text())
            increases = sum(
                float(b.find("increase").immediate_text())
                for b in auction.find_all("bidder")
            )
            current = float(auction.find("current").immediate_text())
            assert abs(current - (initial + increases)) < 0.05

    def test_gold_anchor_present_for_q14(self, small_document):
        items = list(small_document.root.find("regions").iter("item"))
        with_gold = [
            item for item in items
            if "gold" in item.find("description").text_content().split()
        ]
        assert 0 < len(with_gold) < len(items) / 2

    def test_deep_q15_path_populated(self, small_document):
        hits = 0
        for auction in small_document.root.find("closed_auctions").find_all("closed_auction"):
            annotation = auction.find("annotation")
            description = annotation.find("description") if annotation else None
            if description is None:
                continue
            for parlist in description.find_all("parlist"):
                for listitem in parlist.find_all("listitem"):
                    for inner in listitem.find_all("parlist"):
                        for inner_item in inner.find_all("listitem"):
                            for text in inner_item.find_all("text"):
                                for emph in text.find_all("emph"):
                                    hits += len(emph.find_all("keyword"))
        assert hits > 0

    def test_anchor_bidders_appear(self, small_document):
        refs = [
            bidder.find("personref").get("person")
            for auction in small_document.root.find("open_auctions").find_all("open_auction")
            for bidder in auction.find_all("bidder")
        ]
        assert "person2" in refs and "person3" in refs

    def test_profile_income_mostly_present(self, small_document):
        profiles = list(small_document.root.find("people").iter("profile"))
        with_income = [p for p in profiles if p.get("income") is not None]
        assert 0 < len(with_income) <= len(profiles)
        assert len(with_income) / len(profiles) > 0.6

    def test_homepage_missing_fraction_high(self, small_document):
        # Paper on Q17: "The fraction of people without a homepage is rather high".
        persons = small_document.root.find("people").find_all("person")
        without = [p for p in persons if p.find("homepage") is None]
        assert 0.3 < len(without) / len(persons) < 0.7

    def test_anchor_words_are_planted(self):
        from repro.xmlgen.generator import xmark_vocabulary
        vocabulary = xmark_vocabulary()
        for rank, word in ANCHOR_WORDS.items():
            assert vocabulary.word(rank) == word


class TestSplitMode:
    def test_split_writes_valid_chunks(self, tmp_path):
        config = GeneratorConfig(scale=0.001, entities_per_file=10)
        paths = XMarkGenerator(config).write_split(str(tmp_path))
        assert len(paths) > 5
        split_dtd = auction_split_dtd()
        persons = 0
        for path in paths:
            with open(path, encoding="ascii") as handle:
                doc = parse(handle.read())
            if doc.root.tag == "people":
                chunk = doc.root.find_all("person")
                assert 1 <= len(chunk) <= 10
                persons += len(chunk)
                # Per-file validation with the relaxed DTD must pass even
                # though IDREFs point outside the file.
                container_dtd = split_dtd
                for person in chunk:
                    assert container_dtd.element("person") is not None
        assert persons == EntityCounts.for_scale(0.001).persons

    def test_split_requires_config(self, tmp_path):
        from repro.errors import GenerationError
        with pytest.raises(GenerationError):
            XMarkGenerator(GeneratorConfig(scale=0.001)).write_split(str(tmp_path))

    def test_split_chunks_match_single_document_entities(self, tmp_path, tiny_document):
        config = GeneratorConfig(scale=0.001, entities_per_file=1000)
        paths = XMarkGenerator(config).write_split(str(tmp_path))
        people_files = [p for p in paths if os.path.basename(p).startswith("people")]
        with open(people_files[0], encoding="ascii") as handle:
            split_people = parse(handle.read()).root
        single_people = tiny_document.root.find("people")
        assert (split_people.find("person").find("name").immediate_text()
                == single_people.find("person").find("name").immediate_text())


class TestCli:
    def test_dtd_flag(self, capsys):
        assert xmlgen_main(["--dtd"]) == 0
        assert "<!ELEMENT site" in capsys.readouterr().out

    def test_generate_to_file(self, tmp_path, capsys):
        out = tmp_path / "doc.xml"
        assert xmlgen_main(["-f", "0.0005", "-o", str(out), "--stats"]) == 0
        assert out.stat().st_size > 10_000
        assert "persons=" in capsys.readouterr().err

    def test_split_mode_cli(self, tmp_path):
        directory = tmp_path / "split"
        assert xmlgen_main(["-f", "0.0005", "-s", "50", "-d", str(directory)]) == 0
        assert len(list(directory.iterdir())) > 3
