"""Property-based update invariants (hypothesis).

Random interleavings of the four update operations must preserve, on every
examined store architecture and with incremental index maintenance:

(a) probe == scan on every indexed field — a value/sorted index probe
    names exactly the nodes a navigation scan of the extent names, and the
    path index's extents equal the walked extents in document order;
(b) DTD validity of the serialized document (referential integrity
    included: the cascades must never leave a dangling IDREF);
(c) digest discipline — the document digest changes with every applied
    operation, identically across stores sharing the lineage, and stays
    put when nothing is applied.

The examined systems cover the architecture families: A (generic
relational heap), C (DTD-derived inlined schema), D (main-memory +
structural summary), G (naive DOM).  The conformance suite
(tests/test_update.py) covers all seven on a fixed script; here the
*sequences* are adversarial and the properties are structural.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.benchmark.systems import make_store
from repro.index.builder import extract_values
from repro.index.indexes import normalize_key
from repro.index.spec import VALUE
from repro.schema.auction import REFERENCE_TARGETS, auction_dtd
from repro.schema.validator import validate
from repro.update import UpdateStream, apply_update, serialize_store
from repro.xmlio.parser import parse

PROPERTY_SYSTEMS = ("A", "C", "D", "G")

#: Paths whose extents the path-index property walks (entity-level plus
#: the mid-extent-insert case: bidders land inside existing auctions).
CHECKED_PATHS = (
    ("site", "people", "person"),
    ("site", "open_auctions", "open_auction"),
    ("site", "open_auctions", "open_auction", "bidder"),
    ("site", "closed_auctions", "closed_auction"),
    ("site", "regions", "europe", "item"),
)

op_kinds = st.lists(
    st.sampled_from(("register_person", "place_bid", "place_bid",
                     "close_auction", "delete_item")),
    min_size=1, max_size=6)


def walk_extent(store, path):
    nodes = [store.root()]
    for tag in path[1:]:
        nodes = [child for node in nodes
                 for child in store.children_by_tag(node, tag)]
    return nodes


def apply_sequence(store, kinds, seed=7):
    """Apply a kind sequence (substituting register_person when a kind has
    no eligible target) and return the concrete operations applied."""
    stream = UpdateStream(store, seed=seed)
    applied = []
    for kind in kinds:
        if not stream._eligible(kind):
            kind = "register_person"
        op = stream.next_op(kind)
        stream.note_applied(op)
        apply_update(store, op)
        applied.append(op)
    return applied


def assert_probe_equals_scan(store) -> None:
    index_set = store.indexes
    assert index_set is not None
    for field in index_set.spec.fields:
        extent = walk_extent(store, field.path)
        expected: dict = {}
        for node in extent:
            for raw in extract_values(store, node, field.accessor):
                key = normalize_key(raw)
                if key is None:
                    continue
                bucket = expected.setdefault(key, [])
                if node not in bucket:
                    bucket.append(node)
        if field.kind == VALUE:
            index = index_set.values[field.key]
            assert index.extent_size == len(extent), field.label
            for key, nodes in expected.items():
                probed = [handle for _seq, handle in index.probe(key)]
                assert sorted(map(repr, probed)) == sorted(map(repr, nodes)), \
                    (field.label, key)
                positions = [store.doc_position(handle) for handle in probed]
                assert positions == sorted(positions), (field.label, key)
        else:
            index = index_set.sorteds[field.key]
            numeric = {key: nodes for key, nodes in expected.items()
                       if isinstance(key, float)}
            assert index.entries == sum(len(n) for n in numeric.values()), \
                field.label
            for key, nodes in numeric.items():
                matched = [handle for _seq, handle in index.range("=", key)]
                assert sorted(map(repr, matched)) == sorted(map(repr, nodes)), \
                    (field.label, key)
    paths = index_set.paths
    for path in CHECKED_PATHS:
        extent = paths.nodes(path)
        expected_nodes = walk_extent(store, path)
        assert [repr(n) for n in extent] == [repr(n) for n in expected_nodes], \
            (path, len(extent), len(expected_nodes))


@pytest.fixture(scope="module")
def loaded_fresh(tiny_text):
    """Factory: a freshly loaded store per (system, example)."""
    def make(system):
        store = make_store(system)
        store.load(tiny_text)
        return store
    return make


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(kinds=op_kinds)
@pytest.mark.parametrize("system", PROPERTY_SYSTEMS)
def test_probe_equals_scan_under_incremental_maintenance(
        system, loaded_fresh, kinds):
    store = loaded_fresh(system)
    apply_sequence(store, kinds)
    assert_probe_equals_scan(store)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(kinds=op_kinds)
@pytest.mark.parametrize("system", ("C", "G"))
def test_serialized_document_stays_dtd_valid(system, loaded_fresh, kinds):
    store = loaded_fresh(system)
    apply_sequence(store, kinds)
    report = validate(parse(serialize_store(store)), auction_dtd(),
                      REFERENCE_TARGETS)
    assert report.ok, report.violations[:5]


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(kinds=op_kinds)
def test_digest_changes_iff_document_changes(loaded_fresh, kinds):
    first = loaded_fresh("D")
    initial = first.document_digest()
    applied = apply_sequence(first, kinds)
    assert len(applied) == len(kinds)
    # Every applied operation changed the document, so the digest moved.
    assert first.document_digest() != initial
    # An identical lineage reproduces the identical digest...
    second = loaded_fresh("A")
    assert second.document_digest() == initial
    for op in applied:
        apply_update(second, op)
    assert second.document_digest() == first.document_digest()
    # ...and zero applied operations leave the digest untouched.
    untouched = loaded_fresh("G")
    assert untouched.document_digest() == initial
