"""Fault injection for the durability subsystem.

The harness simulates a crash (or storage-level garbling) at chosen byte
positions of a WAL stream and predicts what recovery must produce: the
exact commit prefix that survives.  Two damage modes:

* **truncate** — the file ends mid-write, the classic torn tail.  Points
  are enumerated at every record boundary (a crash between appends: the
  prefix is exactly the records before the cut) and inside every record
  (mid-header and mid-payload: the damaged record and everything after
  it must be dropped, never half-applied).
* **garble** — a byte flips in place (storage corruption).  Points cover
  each header field class (magic, length, crc) and the payload; the
  records *after* the damaged one are physically intact, but the scanner
  is strictly prefix-consistent, so they are dropped too — logging after
  an undurable commit proves nothing.

Every :class:`CrashPoint` carries ``survivors`` — how many records of
the stream remain readable — which is the whole oracle: recovery of the
damaged deployment must equal the never-crashed state after exactly the
surviving global commit prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.storage.wal.records import (
    HEADER_SIZE, TAIL_BAD_CRC, TAIL_BAD_MAGIC, TAIL_CLEAN, TAIL_TORN_HEADER,
    TAIL_TORN_PAYLOAD, WalRecord, iter_records,
)

#: Crash-point offset classes (``CrashPoint.label``).
BOUNDARY = "boundary"                   # between records: a clean tail
MID_HEADER = "mid-header"               # truncated inside the 12-byte header
MID_PAYLOAD = "mid-payload"             # truncated inside the payload
GARBLED_MAGIC = "garbled-magic"
GARBLED_LENGTH = "garbled-length"
GARBLED_CRC = "garbled-crc"
GARBLED_PAYLOAD = "garbled-payload"

#: What the WAL scanner may report for each damage class.  Garbling the
#: length field moves the apparent payload window, so the scanner sees
#: either a payload that runs off the file (torn) or wrong bytes under
#: the CRC — never an intact record.
EXPECTED_TAILS = {
    BOUNDARY: {TAIL_CLEAN},
    MID_HEADER: {TAIL_TORN_HEADER},
    MID_PAYLOAD: {TAIL_TORN_PAYLOAD},
    GARBLED_MAGIC: {TAIL_BAD_MAGIC},
    GARBLED_LENGTH: {TAIL_TORN_PAYLOAD, TAIL_BAD_CRC},
    GARBLED_CRC: {TAIL_BAD_CRC},
    GARBLED_PAYLOAD: {TAIL_BAD_CRC},
}


@dataclass(frozen=True)
class CrashPoint:
    """One simulated crash/corruption in one WAL stream."""

    label: str                          # offset class, see constants above
    mode: str                           # "truncate" | "garble"
    offset: int                         # byte position the damage hits
    survivors: int                      # records still readable afterwards
    record_lsn: int | None = None       # LSN of the damaged record (if any)

    def apply(self, data: bytes) -> bytes:
        if self.mode == "truncate":
            return data[:self.offset]
        return (data[:self.offset]
                + bytes([data[self.offset] ^ 0xFF])
                + data[self.offset + 1:])


def record_spans(data: bytes) -> list[tuple[int, int, WalRecord]]:
    """``(start, end, record)`` for every intact record in the stream.

    ``iter_records`` yields each record's start offset and finally the
    valid end of the stream, so record *i* ends where *i + 1* begins.
    """
    starts: list[tuple[int, WalRecord]] = []
    valid_end = 0
    for offset, item in iter_records(data):
        if isinstance(item, WalRecord):
            starts.append((offset, item))
        else:
            valid_end = offset
    ends = [start for start, _ in starts[1:]] + [valid_end]
    return [(start, end, record)
            for (start, record), end in zip(starts, ends)]


def crash_points(data: bytes) -> list[CrashPoint]:
    """Every crash point the matrix exercises for one stream's bytes.

    Covers each record boundary (truncation between appends) and, per
    record, a truncation in the header, a truncation in the payload, and
    one garbled byte in each header field plus the payload body.
    """
    spans = record_spans(data)
    points: list[CrashPoint] = []
    for index, (start, end, record) in enumerate(spans):
        lsn = record.lsn
        points.append(CrashPoint(BOUNDARY, "truncate", start, index, lsn))
        points.append(CrashPoint(
            MID_HEADER, "truncate", start + HEADER_SIZE // 2, index, lsn))
        payload_len = end - start - HEADER_SIZE
        points.append(CrashPoint(
            MID_PAYLOAD, "truncate",
            start + HEADER_SIZE + max(1, payload_len // 2), index, lsn))
        points.append(CrashPoint(
            GARBLED_MAGIC, "garble", start + 1, index, lsn))
        # high byte of the little-endian length: the window explodes
        points.append(CrashPoint(
            GARBLED_LENGTH, "garble", start + 7, index, lsn))
        points.append(CrashPoint(
            GARBLED_CRC, "garble", start + 9, index, lsn))
        points.append(CrashPoint(
            GARBLED_PAYLOAD, "garble",
            start + HEADER_SIZE + payload_len // 3, index, lsn))
    return points


def apply_crash(path: str | Path, point: CrashPoint) -> None:
    """Damage one WAL stream file in place."""
    path = Path(path)
    path.write_bytes(point.apply(path.read_bytes()))
