"""Differential update conformance across the seven store architectures.

The update subsystem's central promise: applying the same operation
sequence to every store yields the *same document* — byte-identical when
serialized back out — and a store that took updates in place answers
Q1-Q20 exactly like a fresh store bulkloaded from that serialized document
(the scratch-reload oracle), with incremental index maintenance enabled
throughout.  Plus the operation-level contracts: referential cascades keep
the document DTD-valid, digests evolve deterministically along the
operation chain, and invalid operations fail cleanly without corrupting
the store.
"""

from __future__ import annotations

import pytest

from repro.benchmark.queries import QUERIES, query_text
from repro.benchmark.systems import SYSTEMS, get_profile, make_store
from repro.errors import UpdateError
from repro.schema.auction import REFERENCE_TARGETS, auction_dtd
from repro.schema.validator import validate
from repro.update import (
    CloseAuction, DeleteItem, PlaceBid, RegisterPerson, UpdateStream,
    apply_update, serialize_store,
)
from repro.xmlio.parser import parse
from repro.xquery.evaluator import evaluate
from repro.xquery.planner import compile_query

ALL_SYSTEMS = tuple(sorted(SYSTEMS))

#: The scripted update mix: every operation kind, interleaved, with enough
#: repetition to hit mid-extent inserts (bids) and cascaded removals.
SCRIPT = ("register_person", "place_bid", "place_bid", "close_auction",
          "delete_item", "register_person", "place_bid", "close_auction")


def build_script(text: str, kinds=SCRIPT) -> list:
    """The operation list, generated once against a reference store."""
    reference = make_store("D")
    reference.load(text)
    stream = UpdateStream(reference)
    operations = []
    for kind in kinds:
        op = stream.next_op(kind)
        stream.note_applied(op)
        operations.append(op)
    return operations


def updated_stores(text: str, operations: list) -> dict:
    """Every system loaded with ``text`` and carried through the script
    under incremental index maintenance."""
    stores = {}
    for system in ALL_SYSTEMS:
        store = make_store(system)
        store.load(text)
        for op in operations:
            changes = apply_update(store, op)
            assert changes.maintenance == "incremental"
        stores[system] = store
    return stores


def run(store, system: str, query: int):
    return evaluate(compile_query(query_text(query), store, get_profile(system)))


@pytest.fixture(scope="module")
def tiny_updated(tiny_text):
    operations = build_script(tiny_text)
    stores = updated_stores(tiny_text, operations)
    oracle_text = serialize_store(stores["D"])
    return {"stores": stores, "oracle_text": oracle_text,
            "operations": operations, "source": tiny_text}


@pytest.fixture(scope="module")
def tiny_oracle_stores(tiny_updated):
    fresh = {}
    for system in ALL_SYSTEMS:
        store = make_store(system)
        store.load(tiny_updated["oracle_text"])
        fresh[system] = store
    return fresh


class TestDifferentialTiny:
    """All twenty queries, all seven systems, on the ~100 kB document."""

    def test_serialized_documents_identical_across_stores(self, tiny_updated):
        texts = {system: serialize_store(store)
                 for system, store in tiny_updated["stores"].items()}
        assert len(set(texts.values())) == 1, sorted(
            system for system, text in texts.items()
            if text != texts["D"])

    def test_post_update_document_is_dtd_valid(self, tiny_updated):
        report = validate(parse(tiny_updated["oracle_text"]), auction_dtd(),
                          REFERENCE_TARGETS)
        assert report.ok, report.violations[:5]

    def test_document_actually_changed(self, tiny_updated):
        assert tiny_updated["oracle_text"] != tiny_updated["source"]

    @pytest.mark.parametrize("query", sorted(QUERIES))
    def test_queries_match_scratch_reload_and_each_other(
            self, tiny_updated, tiny_oracle_stores, query):
        canonicals = {}
        for system in ALL_SYSTEMS:
            mutated = run(tiny_updated["stores"][system], system, query)
            oracle = run(tiny_oracle_stores[system], system, query)
            assert mutated.canonical() == oracle.canonical(), \
                f"Q{query} on System {system}: updated store diverged " \
                "from the scratch reload of its own serialization"
            canonicals[system] = mutated.canonical()
        assert len(set(canonicals.values())) == 1, \
            f"Q{query}: cross-store disagreement"


class TestDifferentialSmall:
    """The same oracle on the ~200 kB document (one pass, key queries)."""

    QUERIES_SMALL = (1, 2, 4, 5, 6, 7, 13, 14, 15, 17, 19, 20)

    @pytest.fixture(scope="class")
    def small_updated(self, small_text):
        operations = build_script(small_text)
        stores = updated_stores(small_text, operations)
        oracle_text = serialize_store(stores["D"])
        return {"stores": stores, "oracle_text": oracle_text}

    def test_serialized_documents_identical_across_stores(self, small_updated):
        texts = {serialize_store(store)
                 for store in small_updated["stores"].values()}
        assert len(texts) == 1

    @pytest.mark.parametrize("query", QUERIES_SMALL)
    def test_queries_match_scratch_reload_and_each_other(self, small_updated, query):
        canonicals = {}
        for system in ALL_SYSTEMS:
            oracle = make_store(system)
            oracle.load(small_updated["oracle_text"])
            mutated = run(small_updated["stores"][system], system, query)
            expected = run(oracle, system, query)
            assert mutated.canonical() == expected.canonical(), \
                f"Q{query} on System {system}"
            canonicals[system] = mutated.canonical()
        assert len(set(canonicals.values())) == 1, f"Q{query}"


class TestUpdateSemantics:
    """Operation-level contracts, checked on one representative store."""

    @pytest.fixture()
    def store(self, tiny_text):
        store = make_store("D")
        store.load(tiny_text)
        return store

    def test_place_bid_raises_current(self, store):
        stream = UpdateStream(store)
        op = stream.next_op("place_bid")
        auction = store.lookup_id(op.auction_id)
        before = float(store.string_value(
            store.children_by_tag(auction, "current")[0]))
        bidders_before = len(store.children_by_tag(auction, "bidder"))
        apply_update(store, op)
        after = float(store.string_value(
            store.children_by_tag(auction, "current")[0]))
        assert after == pytest.approx(before + op.increase)
        assert len(store.children_by_tag(auction, "bidder")) == bidders_before + 1

    def test_close_auction_moves_and_transforms(self, store):
        stream = UpdateStream(store)
        op = stream.next_op("close_auction")
        auction = store.lookup_id(op.auction_id)
        bidders = store.children_by_tag(auction, "bidder")
        buyer = store.attribute(
            store.children_by_tag(bidders[-1], "personref")[0], "person")
        price = store.string_value(store.children_by_tag(auction, "current")[0])
        root = store.root()
        closed_container = store.children_by_tag(root, "closed_auctions")[0]
        closed_before = len(store.children(closed_container))
        apply_update(store, op)
        assert store.lookup_id(op.auction_id) is None
        closed = store.children(closed_container)
        assert len(closed) == closed_before + 1
        newest = closed[-1]
        assert store.attribute(
            store.children_by_tag(newest, "buyer")[0], "person") == buyer
        assert store.string_value(
            store.children_by_tag(newest, "price")[0]) == price
        # No watch may still reference the closed auction.
        people = store.children_by_tag(root, "people")[0]
        for person in store.children_by_tag(people, "person"):
            for watches in store.children_by_tag(person, "watches"):
                for watch in store.children_by_tag(watches, "watch"):
                    assert store.attribute(watch, "open_auction") != op.auction_id

    def test_delete_item_cascades_over_referencing_auctions(self, store):
        stream = UpdateStream(store)
        op = stream.next_op("delete_item")
        apply_update(store, op)
        root = store.root()
        for container in ("open_auctions", "closed_auctions"):
            holder = store.children_by_tag(root, container)[0]
            for auction in store.children(holder):
                itemref = store.children_by_tag(auction, "itemref")
                assert store.attribute(itemref[0], "item") != op.item_id
        report = validate(parse(serialize_store(store)), auction_dtd(),
                          REFERENCE_TARGETS)
        assert report.ok, report.violations[:5]

    def test_close_auction_without_bidder_raises(self, store):
        root = store.root()
        container = store.children_by_tag(root, "open_auctions")[0]
        bidderless = next(
            (store.attribute(a, "id")
             for a in store.children_by_tag(container, "open_auction")
             if not store.children_by_tag(a, "bidder")), None)
        if bidderless is None:
            pytest.skip("tiny document has no bidderless auction")
        with pytest.raises(UpdateError):
            apply_update(store, CloseAuction(bidderless, "01/01/2001"))

    def test_unknown_targets_raise(self, store):
        with pytest.raises(UpdateError):
            apply_update(store, PlaceBid("open_auction99999", "person0",
                                         1.0, "01/01/2001", "00:00:00"))
        with pytest.raises(UpdateError):
            apply_update(store, CloseAuction("open_auction99999", "01/01/2001"))
        with pytest.raises(UpdateError):
            apply_update(store, DeleteItem("item99999"))

    def test_duplicate_person_id_raises(self, store):
        stream = UpdateStream(store)
        person = stream.build_person()
        apply_update(store, RegisterPerson(person))
        with pytest.raises(UpdateError):
            apply_update(store, RegisterPerson(person))


class TestDigestChain:
    def test_digest_deterministic_across_stores_and_replays(self, tiny_text):
        operations = build_script(tiny_text, SCRIPT[:4])
        digests = []
        for system in ("A", "D", "G"):
            store = make_store(system)
            store.load(tiny_text)
            initial = store.document_digest()
            seen = [initial]
            for op in operations:
                apply_update(store, op)
                seen.append(store.document_digest())
            assert len(set(seen)) == len(seen), "every op must move the digest"
            digests.append(tuple(seen))
        assert len(set(digests)) == 1, \
            "stores sharing a lineage must agree on every digest"

    def test_noop_scalar_write_is_detected(self, tiny_text):
        from repro.update.engine import _Application
        store = make_store("D")
        store.load(tiny_text)
        auction = store.children_by_tag(
            store.children_by_tag(store.root(), "open_auctions")[0],
            "open_auction")[0]
        current = store.children_by_tag(auction, "current")[0]
        value = store.string_value(current)
        app = _Application(store, "incremental")
        path = ("site", "open_auctions", "open_auction", "current")
        assert app.set_text(current, path, value) is False
        assert app.set_text(current, path, value + "1") is True


class TestMaintenanceModes:
    def test_rebuild_mode_reaches_same_state(self, tiny_text):
        operations = build_script(tiny_text, SCRIPT[:5])
        incremental = make_store("D")
        incremental.load(tiny_text)
        rebuild = make_store("D")
        rebuild.load(tiny_text)
        for op in operations:
            apply_update(incremental, op, maintenance_mode="incremental")
            changes = apply_update(rebuild, op, maintenance_mode="rebuild")
            assert changes.maintenance == "rebuild"
        assert serialize_store(incremental) == serialize_store(rebuild)
        for query in (1, 2, 5, 8):
            assert run(incremental, "D", query).canonical() == \
                run(rebuild, "D", query).canonical()

    def test_dropped_indexes_skip_maintenance(self, tiny_text):
        store = make_store("D")
        store.load(tiny_text)
        store.drop_indexes()
        operations = build_script(tiny_text, ("place_bid",))
        changes = apply_update(store, operations[0])
        assert changes.maintenance == "none"
        assert changes.index_seconds == 0.0
        assert run(store, "D", 2).canonical()  # still answers correctly


class TestUpdateStream:
    def test_same_seed_same_operations(self, tiny_text):
        first = build_script(tiny_text)
        second = build_script(tiny_text)
        assert [op.token() for op in first] == [op.token() for op in second]

    def test_generated_person_is_dtd_valid_fragment(self, tiny_text):
        store = make_store("D")
        store.load(tiny_text)
        stream = UpdateStream(store)
        person = stream.build_person()
        declared = auction_dtd().element("person")
        tags = [child.tag for child in person.child_elements()]
        assert declared.content.matches(tags), tags

    def test_stream_tracks_applied_state(self, tiny_text):
        store = make_store("D")
        store.load(tiny_text)
        stream = UpdateStream(store)
        op = stream.next_op("close_auction")
        stream.note_applied(op)
        assert op.auction_id not in stream.open_bidders
