"""Benchmark-kit tests: query set, system registry, runner, reports."""

import pytest

from repro.benchmark.equivalence import check_equivalence
from repro.benchmark.queries import QUERIES, TABLE3_QUERIES, query_text
from repro.benchmark.report import (
    figure4_report, format_table, query_group_legend, table1_report,
    table2_report, table3_report,
)
from repro.benchmark.runner import BenchmarkRunner
from repro.benchmark.systems import SYSTEMS, get_profile, make_store
from repro.errors import BenchmarkError
from repro.storage.bulkload import scan_baseline
from repro.xquery.parser import parse_query


class TestQuerySet:
    def test_twenty_queries(self):
        assert sorted(QUERIES) == list(range(1, 21))

    def test_all_queries_parse(self):
        for number in QUERIES:
            parse_query(query_text(number))  # must not raise

    def test_groups_match_paper_sections(self):
        assert QUERIES[1].group == "Exact match"
        assert QUERIES[2].group == "Ordered access"
        assert QUERIES[5].group == "Casting"
        assert QUERIES[8].group == "Chasing references"
        assert QUERIES[10].group == "Construction of complex results"
        assert QUERIES[11].group == "Joins on values"
        assert QUERIES[13].group == "Reconstruction"
        assert QUERIES[14].group == "Full text"
        assert QUERIES[17].group == "Missing elements"
        assert QUERIES[18].group == "Function application"
        assert QUERIES[19].group == "Sorting"
        assert QUERIES[20].group == "Aggregation"

    def test_table3_query_subset(self):
        assert TABLE3_QUERIES == (1, 2, 3, 5, 6, 7, 8, 9, 10, 11, 12, 17, 20)

    def test_q18_declares_udf(self):
        assert "declare function" in query_text(18)


class TestSystemRegistry:
    def test_seven_systems(self):
        assert sorted(SYSTEMS) == list("ABCDEFG")

    def test_store_instantiation(self):
        for name in SYSTEMS:
            store = make_store(name)
            assert type(store).__name__ == SYSTEMS[name].store_class.__name__

    def test_unknown_system(self):
        with pytest.raises(BenchmarkError):
            make_store("Z")
        with pytest.raises(BenchmarkError):
            get_profile("Z")

    def test_mass_storage_excludes_g(self):
        assert not SYSTEMS["G"].mass_storage
        assert all(SYSTEMS[s].mass_storage for s in "ABCDEF")

    def test_profiles_match_paper_architecture(self):
        assert get_profile("A").optimizer == "cost-exhaustive"
        assert get_profile("C").join_rewrite_depth == 1
        assert get_profile("D").inequality_join == "sorted"
        assert get_profile("G").join_rewrite_depth == 0


class TestRunner:
    @pytest.fixture(scope="class")
    def runner(self, tiny_text):
        return BenchmarkRunner(tiny_text, systems=("D", "G"))

    def test_load_reports(self, runner, tiny_text):
        assert set(runner.load_reports) == {"D", "G"}
        assert runner.load_reports["D"].document_bytes == len(tiny_text)

    def test_run_returns_timing_and_result(self, runner):
        timing, result = runner.run("D", 1)
        assert timing.system == "D" and timing.query == 1
        assert timing.compile_seconds > 0
        assert timing.execute_seconds > 0
        assert timing.result_size == len(result) == 1
        assert 0 <= timing.compile_share <= 1

    def test_run_matrix(self, runner):
        grid = runner.run_matrix(("D", "G"), (1, 6), repeats=2)
        assert set(grid) == {("D", 1), ("D", 6), ("G", 1), ("G", 6)}

    def test_unknown_system_raises(self, runner):
        with pytest.raises(BenchmarkError):
            runner.run("A", 1)  # not loaded in this runner

    def test_g_capacity_failure_is_recorded(self, tiny_text):
        from repro.storage.dom_store import DomStore
        import repro.benchmark.systems as systems_module
        original = DomStore.__init__

        def tiny_limit(self):
            original(self, document_limit=10)

        DomStore.__init__ = tiny_limit
        try:
            runner = BenchmarkRunner(tiny_text, systems=("G",))
            assert "G" in runner.failed_loads
            with pytest.raises(BenchmarkError):
                runner.store("G")
        finally:
            DomStore.__init__ = original


class TestEquivalence:
    def test_agreement(self, tiny_text):
        runner = BenchmarkRunner(tiny_text, systems=("D", "F"))
        results = {s: runner.run(s, 6)[1] for s in ("D", "F")}
        report = check_equivalence(6, results)
        assert report.ok
        assert report.agreeing == ["F"]

    def test_disagreement_detected(self, tiny_text):
        runner = BenchmarkRunner(tiny_text, systems=("D",))
        good = runner.run("D", 6)[1]
        bad = runner.run("D", 5)[1]
        report = check_equivalence(6, {"D": good, "X": bad})
        assert not report.ok
        assert "X" in report.disagreeing


class TestReports:
    def test_format_table_alignment(self):
        text = format_table(["a", "long"], [["1", "2"], ["33", "444"]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular

    def test_table1_report(self, tiny_text):
        runner = BenchmarkRunner(tiny_text, systems=("D", "F"))
        report = table1_report(runner.load_reports, scan_baseline(tiny_text))
        assert "Bulkload time" in report and "scan baseline" in report

    def test_table2_report(self, tiny_text):
        runner = BenchmarkRunner(tiny_text, systems=("A", "B", "C"))
        grid = runner.run_matrix(("A", "B", "C"), (1, 2))
        report = table2_report(grid)
        assert "Compile share" in report
        assert "Q1" in report and "Q2" in report

    def test_table3_report(self, tiny_text):
        runner = BenchmarkRunner(tiny_text, systems=("D", "F"))
        grid = runner.run_matrix(("D", "F"), (1, 5))
        report = table3_report(grid, systems=("D", "F"), queries=(1, 5))
        assert "System D" in report

    def test_figure4_report(self, tiny_text):
        runner = BenchmarkRunner(tiny_text, systems=("G",))
        series = {0.001: {q: runner.run("G", q)[0] for q in (1, 2)}}
        report = figure4_report(series)
        assert "f=0.001" in report

    def test_query_legend(self):
        legend = query_group_legend()
        assert "Q20" in legend and "Aggregation" in legend
