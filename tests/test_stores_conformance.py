"""Cross-store conformance: every system must agree with the DOM oracle.

The paper's entire methodology rests on seven architectures answering the
same queries identically; these tests pin the navigation API of every store
to the parsed DOM as ground truth.
"""

import pytest

from repro.xmlio.canonical import canonicalize
from repro.xmlio.serialize import serialize


def _oracle_person(document, index=0):
    return document.root.find("people").find_all("person")[index]


class TestFullRoundtrip:
    def test_whole_document_reconstruction(self, any_store, small_document):
        """build_dom over the navigation API must reproduce the document."""
        rebuilt = any_store.build_dom(any_store.root())
        assert canonicalize(rebuilt, strip_whitespace=False) == canonicalize(
            small_document, strip_whitespace=False
        )


class TestNavigation:
    def test_root_tag(self, any_store):
        assert any_store.tag(any_store.root()) == "site"

    def test_top_level_children_order(self, any_store):
        tags = [any_store.tag(c) for c in any_store.children(any_store.root())]
        assert tags == ["regions", "categories", "catgraph", "people",
                        "open_auctions", "closed_auctions"]

    def test_children_by_tag_matches_oracle(self, any_store, small_document):
        store = any_store
        people = store.children_by_tag(store.root(), "people")[0]
        persons = store.children_by_tag(people, "person")
        oracle = small_document.root.find("people").find_all("person")
        assert len(persons) == len(oracle)
        assert store.attribute(persons[0], "id") == oracle[0].get("id")
        assert store.attribute(persons[-1], "id") == oracle[-1].get("id")

    def test_descendants_by_tag_count(self, any_store, small_document):
        store = any_store
        expected = sum(1 for _ in small_document.root.iter("item"))
        found = store.descendants_by_tag(store.root(), "item")
        assert len(found) == expected

    def test_descendants_in_document_order(self, any_store):
        store = any_store
        items = store.descendants_by_tag(store.root(), "item")
        positions = [store.doc_position(i) for i in items]
        assert positions == sorted(positions)

    def test_descendants_scoped_to_subtree(self, any_store, small_document):
        store = any_store
        regions = store.children_by_tag(store.root(), "regions")[0]
        europe = store.children_by_tag(regions, "europe")[0]
        expected = len(small_document.root.find("regions").find("europe").find_all("item"))
        assert len(store.descendants_by_tag(europe, "item")) == expected

    def test_descendants_nonexistent_tag_empty(self, any_store):
        store = any_store
        assert store.descendants_by_tag(store.root(), "nonexistent_tag") == []

    def test_attributes_match_oracle(self, any_store, small_document):
        store = any_store
        people = store.children_by_tag(store.root(), "people")[0]
        person = store.children_by_tag(people, "person")[0]
        oracle = _oracle_person(small_document)
        assert store.attributes(person) == dict(oracle.attributes)
        assert store.attribute(person, "id") == oracle.get("id")
        assert store.attribute(person, "missing") is None

    def test_child_texts_match_oracle(self, any_store, small_document):
        store = any_store
        people = store.children_by_tag(store.root(), "people")[0]
        person = store.children_by_tag(people, "person")[0]
        name = store.children_by_tag(person, "name")[0]
        assert "".join(store.child_texts(name)) == _oracle_person(
            small_document).find("name").immediate_text()

    def test_string_value_of_description(self, any_store, small_document):
        store = any_store
        regions = store.children_by_tag(store.root(), "regions")[0]
        items = store.descendants_by_tag(regions, "item")
        oracle_items = list(small_document.root.find("regions").iter("item"))
        for index in (0, len(items) // 2, len(items) - 1):
            ours = store.string_value(
                store.children_by_tag(items[index], "description")[0])
            theirs = oracle_items[index].find("description").text_content()
            assert ours == theirs

    def test_content_interleaving(self, any_store, small_document):
        """Mixed-content reconstruction must preserve text/element order."""
        store = any_store
        regions = store.children_by_tag(store.root(), "regions")[0]
        item = store.descendants_by_tag(regions, "item")[0]
        description = store.children_by_tag(item, "description")[0]
        rebuilt = store.build_dom(description)
        oracle = list(small_document.root.find("regions").iter("item"))[0].find("description")
        assert serialize(rebuilt) == serialize(oracle)

    def test_parent_of_person(self, any_store):
        store = any_store
        people = store.children_by_tag(store.root(), "people")[0]
        person = store.children_by_tag(people, "person")[0]
        parent = store.parent(person)
        assert parent is not None
        assert store.tag(parent) == "people"

    def test_parent_of_root_is_none_or_site_container(self, any_store):
        store = any_store
        assert store.parent(store.root()) is None

    def test_doc_position_orders_bidders(self, any_store, small_document):
        """Q4's << operator depends on bidder order within an auction."""
        store = any_store
        auctions = store.children_by_tag(store.root(), "open_auctions")[0]
        for auction in store.children_by_tag(auctions, "open_auction"):
            bidders = store.children_by_tag(auction, "bidder")
            positions = [store.doc_position(b) for b in bidders]
            assert positions == sorted(positions)
            if len(bidders) >= 2:
                return
        pytest.skip("no auction with two bidders at this scale")

    def test_size_bytes_positive(self, any_store):
        assert any_store.size_bytes() > 0


class TestIdLookup:
    def test_id_index_when_supported(self, any_store, small_document):
        store = any_store
        if not store.has_id_index():
            assert store.lookup_id("person0") is None
            return
        handle = store.lookup_id("person0")
        assert handle is not None
        assert store.tag(handle) == "person"
        assert store.attribute(handle, "id") == "person0"
        assert store.lookup_id("person-that-does-not-exist") is None

    def test_item_lookup(self, any_store):
        store = any_store
        if not store.has_id_index():
            # stores without an ID index must still answer (with a miss),
            # not crash — lookup_id is part of the Store contract
            assert store.lookup_id("item0") is None
            return
        handle = store.lookup_id("item0")
        assert store.tag(handle) == "item"
