"""The sharded document subsystem.

Three layers under test:

* the partitioner — placement rules, co-location, loadable fragments;
* the ShardedStore compatibility path — bit-identical serialization,
  Q1-Q20 answers, and update replay against a single-store oracle
  (deterministic cases plus a hypothesis property over op sequences,
  shard counts and mixed backend architectures);
* the scatter-gather executor — distributed plan selection, result
  equality per plan kind, and shard-selective partial caching.
"""

from __future__ import annotations

import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.benchmark.queries import QUERIES, query_text
from repro.benchmark.systems import get_profile, make_store
from repro.errors import ShardError, StorageError
from repro.schema.auction import REGIONS
from repro.shard.partition import (
    DocumentPartitioner, EXTENT_SPECS, shard_of_key,
)
from repro.shard.scatter import SHARDED_PROFILE, ScatterGatherExecutor
from repro.shard.store import ShardedStore
from repro.storage.interface import store_document_text
from repro.update.engine import apply_update
from repro.update.stream import UpdateStream
from repro.xmlio.dom import Element
from repro.xmlio.parser import parse
from repro.xmlio.serialize import serialize
from repro.xquery.evaluator import evaluate
from repro.xquery.planner import compile_query


def run_store(store, profile, number: int) -> str:
    return evaluate(compile_query(query_text(number), store, profile)).serialize()


@pytest.fixture(scope="module")
def oracle_store(tiny_text):
    store = make_store("F")
    store.load(tiny_text)
    return store


@pytest.fixture(scope="module")
def sharded_three(tiny_text):
    store = ShardedStore(3, ("F", "G", "E"))
    store.load(tiny_text)
    return store


class TestPartitioner:
    def test_every_entity_lands_on_exactly_one_shard(self, tiny_text):
        partition = DocumentPartitioner(3).partition(tiny_text)
        source = parse(tiny_text).root
        for spec in EXTENT_SPECS:
            container = source
            for tag in spec.path[1:]:
                container = container.find(tag)
            total = len(list(container.child_elements()))
            assignment = partition.extents[spec.path]
            seqs = [seq for shard in assignment.seqs for seq in shard]
            assert sorted(seqs) == list(range(total))

    def test_placement_rules(self, tiny_text):
        partition = DocumentPartitioner(3).partition(tiny_text)
        fragments = [parse(text).root for text in partition.shard_texts]
        for rank, site in enumerate(fragments):
            people = site.find("people")
            for person in people.child_elements():
                identifier = person.attributes["id"]
                assert shard_of_key(identifier, 3) == rank
                assert partition.id_map[identifier][0] == rank
            regions = site.find("regions")
            for position, region in enumerate(regions.child_elements()):
                assert region.tag == REGIONS[position]
                if list(region.child_elements()):
                    assert position % 3 == rank
            for container in ("open_auctions", "closed_auctions"):
                for auction in site.find(container).child_elements():
                    item = auction.find("itemref").attributes["item"]
                    assert shard_of_key(item, 3) == rank

    def test_auctions_referencing_one_item_are_co_located(self, tiny_text):
        partition = DocumentPartitioner(6).partition(tiny_text)
        item_shard: dict[str, set[int]] = {}
        for rank, text in enumerate(partition.shard_texts):
            site = parse(text).root
            for container in ("open_auctions", "closed_auctions"):
                for auction in site.find(container).child_elements():
                    item = auction.find("itemref").attributes["item"]
                    item_shard.setdefault(item, set()).add(rank)
        assert item_shard and all(len(s) == 1 for s in item_shard.values())

    def test_categories_live_on_shard_zero(self, tiny_text):
        partition = DocumentPartitioner(4).partition(tiny_text)
        for rank, text in enumerate(partition.shard_texts[1:], start=1):
            site = parse(text).root
            assert not list(site.find("categories").child_elements())
            assert not list(site.find("catgraph").child_elements())

    def test_single_shard_fragment_is_the_whole_document(self, tiny_text):
        partition = DocumentPartitioner(1).partition(tiny_text)
        assert partition.shard_texts == [serialize(parse(tiny_text).root)]

    def test_summary_counts(self, tiny_text):
        partition = DocumentPartitioner(2).partition(tiny_text)
        summary = partition.summary()
        assert summary["shards"] == 2
        persons = sum(row["person"] for row in summary["entities"])
        assert persons == len(parse(tiny_text).root.find("people").children)

    def test_rejects_bad_input(self, tiny_text):
        with pytest.raises(ShardError):
            DocumentPartitioner(0)
        with pytest.raises(ShardError):
            DocumentPartitioner(2).partition("<notsite/>")


class TestShardedStoreNavigation:
    def test_serialization_is_bit_identical(self, tiny_text, oracle_store,
                                            sharded_three):
        assert store_document_text(sharded_three) == \
            store_document_text(oracle_store)

    @pytest.mark.parametrize("number", sorted(QUERIES))
    def test_compatibility_path_answers_match_oracle(
            self, number, oracle_store, sharded_three):
        expected = run_store(oracle_store, get_profile("F"), number)
        assert run_store(sharded_three, SHARDED_PROFILE, number) == expected

    def test_doc_positions_sort_like_document_order(self, sharded_three):
        walked = []
        stack = [sharded_three.root()]
        while stack:
            node = stack.pop()
            walked.append(sharded_three.doc_position(node))
            stack.extend(reversed(sharded_three.children(node)))
        assert walked == sorted(walked)

    def test_lookup_id_routes_across_shards(self, sharded_three, oracle_store):
        handle = sharded_three.lookup_id("person0")
        assert handle is not None
        assert sharded_three.tag(handle) == "person"
        assert sharded_three.attribute(handle, "id") == "person0"
        assert sharded_three.lookup_id("no-such-id") is None

    def test_virtual_containers_refuse_direct_structural_writes(
            self, sharded_three):
        root = sharded_three.root()
        with pytest.raises(StorageError):
            sharded_three.remove_node(root)
        with pytest.raises(StorageError):
            sharded_three.insert_child(root, Element("people"))
        with pytest.raises(StorageError):
            sharded_three.set_text(root, "boom")

    def test_rejects_bad_construction(self):
        with pytest.raises(ShardError):
            ShardedStore(0)
        with pytest.raises(ShardError):
            ShardedStore(2, ())


class TestShardedUpdates:
    """The update engine on the sharded store vs a single-store replay."""

    BACKEND_MIXES = [("F",), ("F", "G", "E"), ("A", "F")]

    @settings(max_examples=4, deadline=None)
    @given(
        shards=st.sampled_from((1, 2, 6)),
        mix=st.sampled_from(range(len(BACKEND_MIXES))),
        seed=st.integers(min_value=1, max_value=2**31),
        op_count=st.integers(min_value=3, max_value=8),
    )
    def test_replay_property(self, tiny_text, shards, mix, seed, op_count):
        """Q1-Q20 and post-update serializations over a ShardedStore are
        bit-identical to a single store replaying the same op sequence."""
        single = make_store("F")
        single.load(tiny_text)
        sharded = ShardedStore(shards, self.BACKEND_MIXES[mix])
        sharded.load(tiny_text)
        stream = UpdateStream(single, seed)
        for _ in range(op_count):
            op = stream.next_op()
            stream.note_applied(op)
            first = apply_update(single, op)
            second = apply_update(sharded, op)
            assert first.digest == second.digest
        assert store_document_text(sharded) == store_document_text(single)
        for number in sorted(QUERIES):
            assert run_store(sharded, SHARDED_PROFILE, number) == \
                run_store(single, get_profile("F"), number)

    def test_close_auction_cascade_is_co_located(self, tiny_text):
        sharded = ShardedStore(3, ("F",))
        sharded.load(tiny_text)
        single = make_store("F")
        single.load(tiny_text)
        stream = UpdateStream(single)
        op = stream.next_op("close_auction")
        open_shard = sharded.shard_of_id(op.auction_id)
        closed_path = ("site", "closed_auctions")
        before = [len(shard) for shard in sharded.extent_members(closed_path)]
        apply_update(sharded, op)
        after = [len(shard) for shard in sharded.extent_members(closed_path)]
        grew = [rank for rank in range(3) if after[rank] == before[rank] + 1]
        assert grew == [open_shard]

    def test_writes_advance_only_the_touched_shard_digest(self, tiny_text):
        sharded = ShardedStore(3, ("F",))
        sharded.load(tiny_text)
        single = make_store("F")
        single.load(tiny_text)
        stream = UpdateStream(single)
        op = stream.next_op("register_person")
        target = shard_of_key(op.person.attributes["id"], 3)
        before = [sharded.shard_digest(rank) for rank in range(3)]
        apply_update(sharded, op)
        after = [sharded.shard_digest(rank) for rank in range(3)]
        for rank in range(3):
            if rank == target:
                assert after[rank] != before[rank]
            else:
                assert after[rank] == before[rank]
        assert sharded.shard_indexes_dirty(target)
        sharded.ensure_shard_indexes(target)
        assert not sharded.shard_indexes_dirty(target)


class TestScatterGather:
    EXPECTED_PLANS = {
        1: "routed", 2: "scatter_flwor", 5: "partial_count",
        8: "broadcast_join", 13: "routed", 20: "fallback",
    }

    @pytest.fixture(scope="class")
    def executor(self, sharded_three):
        with ScatterGatherExecutor(sharded_three) as executor:
            yield executor

    def test_plan_selection(self, executor):
        for number, kind in self.EXPECTED_PLANS.items():
            assert executor.explain(query_text(number)) == kind, f"Q{number}"

    @pytest.mark.parametrize("number", sorted(QUERIES))
    def test_distributed_results_match_oracle(self, number, executor,
                                              oracle_store):
        expected = run_store(oracle_store, get_profile("F"), number)
        outcome = executor.execute(query_text(number))
        assert outcome.result.serialize() == expected

    def test_routed_query_touches_one_shard(self, executor):
        outcome = executor.execute(query_text(1))
        assert outcome.plan_kind == "routed"
        assert outcome.shards_used == 1

    def test_join_with_computed_inner_return_is_not_distributed(
            self, executor, oracle_store):
        """count($a) over ``return $t/bidder`` counts the *returned* items
        per match, which build-side bucket counts cannot stand in for —
        the shape must fall back, and the fallback must match the oracle."""
        query = (
            'for $p in document("auction.xml")/site/people/person\n'
            'let $a := for $t in document("auction.xml")'
            '/site/open_auctions/open_auction\n'
            '          where $t/seller/@person = $p/@id\n'
            '          return $t/bidder\n'
            'return <x>{count($a)}</x>')
        assert executor.explain(query) == "fallback"
        expected = evaluate(compile_query(
            query, oracle_store, get_profile("F"))).serialize()
        assert executor.execute(query).result.serialize() == expected

    def test_routed_unknown_id_is_empty(self, executor):
        outcome = executor.execute(
            'for $b in document("auction.xml")/site/people/person'
            '[@id = "person999999"] return $b/name/text()')
        assert outcome.plan_kind == "routed"
        assert len(outcome.result) == 0

    def test_count_pushdown_skips_materialization(self, sharded_three,
                                                  oracle_store):
        with ScatterGatherExecutor(sharded_three) as executor:
            for store in sharded_three.shard_stores():
                store.stats.reset()
            outcome = executor.execute(query_text(5))
            visited = sum(store.stats.nodes_visited
                          for store in sharded_three.shard_stores())
            lookups = sum(store.stats.index_lookups
                          for store in sharded_three.shard_stores())
        expected = run_store(oracle_store, get_profile("F"), 5)
        assert outcome.result.serialize() == expected
        assert lookups == sharded_three.shard_count
        assert visited == 0              # pure bisection, no navigation

    def test_single_shard_mode_delegates_to_the_backend(self, tiny_text,
                                                        oracle_store):
        sharded = ShardedStore(1, ("F",))
        sharded.load(tiny_text)
        with ScatterGatherExecutor(sharded) as executor:
            outcome = executor.execute(query_text(5))
            assert outcome.plan_kind == "single"
            assert outcome.result.serialize() == \
                run_store(oracle_store, get_profile("F"), 5)

    def test_closed_executor_rejects_work(self, tiny_text):
        sharded = ShardedStore(2, ("F",))
        sharded.load(tiny_text)
        executor = ScatterGatherExecutor(sharded)
        executor.close()
        with pytest.raises(ShardError):
            executor.execute(query_text(1))


class TestShardSelectiveInvalidation:
    def test_write_invalidates_only_the_touched_shards_partials(self, tiny_text):
        sharded = ShardedStore(3, ("F",))
        sharded.load(tiny_text)
        single = make_store("F")
        single.load(tiny_text)
        with ScatterGatherExecutor(sharded) as executor:
            first = executor.execute(query_text(5))
            assert first.partial_misses == 3 and first.partial_hits == 0
            warm = executor.execute(query_text(5))
            assert warm.partial_hits == 3 and warm.partial_misses == 0

            op = UpdateStream(single).next_op("register_person")
            target = shard_of_key(op.person.attributes["id"], 3)
            apply_update(sharded, op)

            third = executor.execute(query_text(5))
            # Only the written shard's digest moved: its partial recomputes,
            # the other shards' cached partials keep serving.
            assert third.partial_hits == 2
            assert third.partial_misses == 1
            assert third.result.serialize() == first.result.serialize()
            assert sharded.shard_digest(target) is not None

    def test_join_probe_partials_cover_every_shard_digest(self, tiny_text):
        """A build-side write on one shard must refresh *all* probe
        partials (they embed the broadcast table), not just that shard's."""
        sharded = ShardedStore(2, ("F",))
        sharded.load(tiny_text)
        single = make_store("F")
        single.load(tiny_text)
        with ScatterGatherExecutor(sharded) as executor:
            executor.execute(query_text(8))
            stream = UpdateStream(single)
            op = stream.next_op("close_auction")   # grows closed_auctions
            apply_update(single, op)
            apply_update(sharded, op)
            outcome = executor.execute(query_text(8))
            assert outcome.result.serialize() == \
                run_store(single, get_profile("F"), 8)


def test_shard_of_key_is_stable():
    assert shard_of_key("person0", 6) == zlib.crc32(b"person0") % 6
    assert shard_of_key("person0", 6) == shard_of_key("person0", 6)
