"""Shared fixtures: generated documents and loaded stores.

Documents and stores are session-scoped — generation and bulkload are the
expensive parts of the pipeline, and every consumer treats them read-only.
"""

from __future__ import annotations

import pytest

from repro.benchmark.systems import SYSTEMS, make_store
from repro.xmlgen.generator import generate_string
from repro.xmlio.parser import parse

TINY_SCALE = 0.001    # ~100 kB, the paper's Figure 4 small document
SMALL_SCALE = 0.002   # ~200 kB, used where more data variety helps


@pytest.fixture(scope="session")
def tiny_text() -> str:
    return generate_string(TINY_SCALE)


@pytest.fixture(scope="session")
def small_text() -> str:
    return generate_string(SMALL_SCALE)


@pytest.fixture(scope="session")
def tiny_document(tiny_text):
    return parse(tiny_text)


@pytest.fixture(scope="session")
def small_document(small_text):
    return parse(small_text)


@pytest.fixture(scope="session")
def loaded_stores(small_text):
    """All seven systems loaded with the same small document."""
    stores = {}
    for name in SYSTEMS:
        store = make_store(name)
        store.load(small_text)
        stores[name] = store
    return stores


@pytest.fixture(params=sorted(SYSTEMS))
def any_store(request, loaded_stores):
    """Parametrized fixture: each system's loaded store in turn."""
    return loaded_stores[request.param]
