"""The query service: caching, workload determinism, metrics, concurrency.

Covers the serving layer's contracts:

* plan-cache reuse (the same compiled object, zero recompilation),
* result-cache invalidation when the document changes,
* deterministic workload generation under a fixed seed,
* latency-percentile math,
* thread-safety regression: the same query from 8 threads must return
  identical results on every store architecture the service targets.
"""

from __future__ import annotations

import concurrent.futures
import threading

import pytest

from repro.errors import BenchmarkError
from repro.service import (
    LRUCache, PlanCache, QueryService, ResultCache, ServiceMetrics,
    WorkloadGenerator, WorkloadSpec, percentile,
)
from repro.service.metrics import LatencySummary
from repro.benchmark.queries import QUERIES, query_text
from repro.benchmark.systems import get_profile
from repro.xmlgen.config import GeneratorConfig
from repro.xmlgen.generator import XMarkGenerator
from repro.xquery.evaluator import evaluate
from repro.xquery.planner import compile_query


@pytest.fixture(scope="module")
def service(small_text):
    with QueryService(small_text, ("B", "C", "D"), max_workers=8) as svc:
        yield svc


class TestLRUCache:
    def test_miss_then_hit(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.misses == 1 and cache.stats.hits == 1

    def test_eviction_order_is_lru(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1     # refresh a; b becomes the LRU victim
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_get_or_compute(self):
        cache = LRUCache(4)
        value, hit = cache.get_or_compute("k", lambda: 41 + 1)
        assert (value, hit) == (42, False)
        value, hit = cache.get_or_compute("k", lambda: pytest.fail("must not run"))
        assert (value, hit) == (42, True)

    def test_cached_none_is_a_hit(self):
        """A legitimately-falsy cached value must not read as a miss.

        Regression: ``get_or_compute`` used to test the value against
        ``None``, so a cached ``None`` (or empty result) recomputed and
        re-``put`` on every lookup."""
        cache = LRUCache(4)
        cache.put("empty", None)
        value, hit = cache.lookup("empty")
        assert (value, hit) == (None, True)
        value, hit = cache.get_or_compute(
            "empty", lambda: pytest.fail("cached None must not recompute"))
        assert (value, hit) == (None, True)
        assert cache.stats.hits == 2 and cache.stats.misses == 0

    def test_cached_falsy_values_hit(self):
        cache = LRUCache(8)
        for key, falsy in (("zero", 0), ("empty-list", []), ("empty-str", "")):
            cache.put(key, falsy)
            value, hit = cache.get_or_compute(
                key, lambda: pytest.fail("cached falsy must not recompute"))
            assert hit and value == falsy
        # An absent key still reads as a miss through the same surface.
        value, hit = cache.lookup("absent")
        assert (value, hit) == (None, False)

    def test_invalidate_where(self):
        cache = ResultCache(8)
        cache.put(ResultCache.key("D", "q", "digest1"), "old")
        cache.put(ResultCache.key("D", "q", "digest2"), "new")
        assert cache.invalidate_document("digest1") == 1
        assert cache.get(ResultCache.key("D", "q", "digest1")) is None
        assert cache.get(ResultCache.key("D", "q", "digest2")) == "new"
        assert cache.stats.invalidations == 1

    def test_concurrent_put_get(self):
        cache = LRUCache(16)
        errors: list[BaseException] = []

        def worker(base: int) -> None:
            try:
                for i in range(200):
                    cache.put((base, i % 20), i)
                    cache.get((base, (i + 7) % 20))
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 16


class TestPercentiles:
    def test_known_quartiles(self):
        samples = [15.0, 20.0, 35.0, 40.0, 50.0]
        assert percentile(samples, 0) == 15.0
        assert percentile(samples, 100) == 50.0
        assert percentile(samples, 50) == 35.0
        # linear interpolation: rank = 0.25 * 4 = 1.0 -> exactly x[1]
        assert percentile(samples, 25) == 20.0
        # rank = 0.40 * 4 = 1.6 -> 20 + 0.6 * 15
        assert percentile(samples, 40) == pytest.approx(29.0)

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_single_sample(self):
        assert percentile([7.5], 99) == 7.5

    def test_single_sample_at_every_boundary(self):
        # One sample is every percentile of itself, including both ends.
        for q in (0, 0.0, 50, 100, 100.0):
            assert percentile([7.5], q) == 7.5

    def test_all_equal_samples_never_interpolate_away(self):
        samples = [0.25] * 9
        for q in (0, 1, 50, 95, 99, 100):
            assert percentile(samples, q) == 0.25

    def test_boundary_ranks_are_exact_not_interpolated(self):
        # q=0 and q=100 must return the exact extremes: rank 0 and n-1
        # land on real elements, so no interpolation drift is tolerated.
        samples = [0.1, 0.2, 0.7]
        assert percentile(samples, 0) == 0.1
        assert percentile(samples, 100) == 0.7
        # Two samples: the midpoint interpolates, the ends do not.
        assert percentile([1.0, 2.0], 0) == 1.0
        assert percentile([1.0, 2.0], 50) == pytest.approx(1.5)
        assert percentile([1.0, 2.0], 100) == 2.0

    def test_near_boundary_interpolation(self):
        # rank = 0.999 * 1 for n=2: interpolates just below the maximum.
        assert percentile([0.0, 1.0], 99.9) == pytest.approx(0.999)
        assert percentile([0.0, 1.0], 0.1) == pytest.approx(0.001)

    def test_rejects_empty_and_bad_q(self):
        from repro.errors import BenchmarkError
        with pytest.raises(BenchmarkError):
            percentile([], 50)
        with pytest.raises(BenchmarkError):
            percentile([1.0], 101)
        with pytest.raises(BenchmarkError):
            percentile([1.0], -0.001)

    def test_summary_from_samples(self):
        summary = LatencySummary.from_samples([0.001 * i for i in range(1, 101)])
        assert summary.count == 100
        assert summary.p50 == pytest.approx(0.0505)
        assert summary.p99 == pytest.approx(0.09901)
        assert summary.maximum == pytest.approx(0.1)

    def test_metrics_snapshot(self):
        metrics = ServiceMetrics()
        for i in range(10):
            metrics.record(started=float(i), finished=float(i) + 0.5,
                           compile_seconds=0.1, queue_seconds=0.0,
                           plan_cache_hit=(i % 2 == 0), result_cache_hit=False)
        snapshot = metrics.snapshot()
        assert snapshot["completed"] == 10
        assert snapshot["plan_cache_hits"] == 5
        assert snapshot["elapsed_seconds"] == pytest.approx(9.5)
        assert snapshot["throughput_qps"] == pytest.approx(10 / 9.5, abs=0.01)
        assert snapshot["latency"]["p50_ms"] == pytest.approx(500.0)


class TestWorkloadGenerator:
    def test_same_seed_identical_stream(self):
        spec = WorkloadSpec(clients=6, requests_per_client=40, think_mean_seconds=0.001)
        assert WorkloadGenerator(spec).flat() == WorkloadGenerator(spec).flat()

    def test_different_seed_different_stream(self):
        base = WorkloadSpec(clients=4, requests_per_client=40)
        other = WorkloadSpec(clients=4, requests_per_client=40, seed=base.seed + 1)
        assert WorkloadGenerator(base).flat() != WorkloadGenerator(other).flat()

    def test_clients_are_independent_streams(self):
        generator = WorkloadGenerator(WorkloadSpec(clients=2, requests_per_client=50))
        first, second = generator.streams()
        assert [r.query for r in first] != [r.query for r in second]
        # ... but replaying one client alone matches the full generation.
        assert generator.client_stream(1) == second

    def test_zipf_skew_concentrates_popular_queries(self):
        spec = WorkloadSpec(clients=8, requests_per_client=100, zipf_exponent=1.0)
        generator = WorkloadGenerator(spec)
        histogram = generator.query_histogram()
        most_popular = generator.popularity_order[0]
        least_popular = generator.popularity_order[-1]
        assert histogram[most_popular] > 3 * histogram[least_popular]
        assert sum(histogram.values()) == spec.total_requests

    def test_explicit_weights_override_zipf(self):
        spec = WorkloadSpec(clients=2, requests_per_client=50, queries=(1, 6),
                            query_weights=(1.0, 0.0))
        histogram = WorkloadGenerator(spec).query_histogram()
        assert histogram == {1: 100, 6: 0}

    def test_think_times_follow_mean(self):
        spec = WorkloadSpec(clients=4, requests_per_client=200,
                            think_mean_seconds=0.01)
        thinks = [r.think_seconds for r in WorkloadGenerator(spec).flat()]
        assert all(t >= 0 for t in thinks)
        assert sum(thinks) / len(thinks) == pytest.approx(0.01, rel=0.15)

    def test_validation(self):
        with pytest.raises(BenchmarkError):
            WorkloadSpec(clients=0)
        with pytest.raises(BenchmarkError):
            WorkloadSpec(queries=(999,))
        with pytest.raises(BenchmarkError):
            WorkloadSpec(queries=(1, 2), query_weights=(1.0,))


class TestQueryService:
    def test_submit_returns_result(self, service):
        outcome = service.execute("D", 1)
        assert outcome.result_size == 1
        assert outcome.system == "D"
        assert outcome.latency_seconds > 0

    def test_plan_cache_reuse(self, small_text):
        with QueryService(small_text, ("B",), max_workers=2,
                          result_cache_size=0) as svc:
            first = svc.execute("B", 7)
            again = svc.execute("B", 7)
            assert not first.plan_cache_hit and first.compile_seconds > 0
            assert again.plan_cache_hit and again.compile_seconds == 0.0
            assert again.result_size == first.result_size
            # The cached entry is the very same compiled object.
            key = PlanCache.key("B", svc._query_text(7))
            assert svc.plan_cache.get(key) is svc.plan_cache.get(key)
            assert svc.plan_cache.stats.hits >= 1

    def test_plan_cache_is_per_system(self, service):
        service.execute("D", 5)
        outcome = service.execute("C", 5)
        assert not outcome.plan_cache_hit

    def test_result_cache_hit_skips_execution(self, small_text):
        with QueryService(small_text, ("D",), max_workers=2) as svc:
            first = svc.execute("D", 2)
            again = svc.execute("D", 2)
            assert not first.result_cache_hit
            assert again.result_cache_hit
            assert again.execute_seconds == 0.0
            assert again.result is first.result

    def test_result_cache_invalidated_on_document_change(self, small_text, tiny_text):
        with QueryService(small_text, ("D",), max_workers=2) as svc:
            before = svc.execute("D", 6)
            digest_before = svc.store("D").document_digest()
            svc.reload_document(tiny_text)
            after = svc.execute("D", 6)
            assert svc.store("D").document_digest() != digest_before
            assert not after.result_cache_hit, "stale result must not be served"
            assert not after.plan_cache_hit, "plans are bound to the old store"
            # Q6 counts items per region: different documents, different counts.
            assert after.result.serialize() != before.result.serialize()
            assert svc.result_cache.stats.invalidations >= 1

    def test_stale_plan_from_raced_reload_is_recompiled(self, small_text, tiny_text):
        """A plan bound to a superseded store (a compile racing
        reload_document) must not be executed or re-cached."""
        with QueryService(small_text, ("D",), max_workers=2) as svc:
            old_store = svc.store("D")
            svc.reload_document(tiny_text)
            text = svc._query_text(6)
            # Simulate the race: a late put() lands a plan compiled against
            # the old store after the reload cleared the cache.
            stale = compile_query(text, old_store, get_profile("D"))
            svc.plan_cache.put(PlanCache.key("D", text), stale)
            outcome = svc.execute("D", 6)
            assert not outcome.plan_cache_hit
            fresh = svc.plan_cache.get(PlanCache.key("D", text))
            assert fresh is not stale and fresh.store is svc.store("D")
            # The served result matches the current document, not the old one.
            direct = evaluate(compile_query(text, svc.store("D"), get_profile("D")))
            assert outcome.result.serialize() == direct.serialize()

    def test_workload_snapshot_cache_stats_are_per_window(self, small_text):
        spec = WorkloadSpec(clients=2, requests_per_client=5, systems=("D",))
        with QueryService(small_text, ("D",), max_workers=2) as svc:
            for _ in range(4):
                svc.execute("D", 1)  # pre-workload traffic must not leak in
            snapshot = svc.run_workload(spec)
        cache = snapshot["result_cache"]
        assert cache["hits"] + cache["misses"] == spec.total_requests

    def test_submit_batch(self, service):
        futures = service.submit_batch([("D", 1), ("D", 5), ("C", 2)])
        outcomes = [f.result() for f in futures]
        assert [o.system for o in outcomes] == ["D", "D", "C"]

    def test_raw_query_text(self, service):
        outcome = service.execute(
            "D", 'for $p in document("auction.xml")/site/people/person return $p/name')
        assert outcome.result_size > 0

    def test_unavailable_system_raises(self, service):
        with pytest.raises(BenchmarkError, match="unavailable"):
            service.submit("A", 1)

    def test_run_workload_snapshot(self, small_text):
        spec = WorkloadSpec(clients=3, requests_per_client=5, systems=("D",),
                            think_mean_seconds=0.0)
        with QueryService(small_text, ("D",), max_workers=4) as svc:
            snapshot = svc.run_workload(spec)
        assert snapshot["completed"] == spec.total_requests
        assert snapshot["errors"] == 0
        assert snapshot["throughput_qps"] > 0
        assert snapshot["latency"]["p95_ms"] >= snapshot["latency"]["p50_ms"]

    def test_closed_service_rejects_work(self, small_text):
        svc = QueryService(small_text, ("D",), max_workers=1)
        svc.close()
        with pytest.raises(BenchmarkError, match="closed"):
            svc.submit("D", 1)


class TestConcurrentReads:
    """Thread-safety regression: stores must serve identical results from
    many threads at once (the SummaryStore/FragmentStore audit)."""

    QUERY_BY_SYSTEM = {"B": 13, "C": 14, "D": 10}  # reconstruction + full text

    @pytest.mark.parametrize("system", sorted(QUERY_BY_SYSTEM))
    def test_same_query_from_8_threads(self, service, system):
        query = self.QUERY_BY_SYSTEM[system]
        store = service.store(system)
        profile = get_profile(system)
        compiled = compile_query(query_text(query), store, profile)
        reference = evaluate(compiled).serialize()

        with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
            serialized = list(pool.map(
                lambda _: evaluate(compiled).serialize(), range(8)))
        assert all(s == reference for s in serialized)

    def test_mixed_workload_across_systems(self, service):
        """submit() from many clients against three architectures at once."""
        spec = WorkloadSpec(clients=8, requests_per_client=6,
                            systems=("B", "C", "D"), seed=99)
        snapshot = service.run_workload(spec)
        assert snapshot["completed"] == spec.total_requests
        assert snapshot["errors"] == 0

    def test_fragment_store_string_value_has_no_read_scratch(self, service):
        store = service.store("B")
        scratch_before = dict(store._text_tables_below)
        root = store.root()
        store.string_value(root)
        assert store._text_tables_below == scratch_before, \
            "string_value must not mutate shared state"


PERSON_LISTING = """
for $p in document("auction.xml")/site/people/person
return $p/name/text()
"""


class TestServiceWritePath:
    """The write path: exclusion, selective invalidation, reload no-op."""

    def test_concurrent_readers_never_observe_a_torn_document(self, tiny_text):
        """8 reader threads against a store taking writes: every observed
        result must be one of the documents the update chain produced —
        a person count within the applied range, every name non-empty —
        never a half-spliced state."""
        from repro.update import RegisterPerson, UpdateStream

        with QueryService(tiny_text, ("D",), max_workers=8,
                          result_cache_size=0) as svc:
            store = svc.store("D")
            stream = UpdateStream(store)
            base_count = len(store.children_by_tag(
                store.children_by_tag(store.root(), "people")[0], "person"))
            updates = 6
            stop = threading.Event()
            violations: list[str] = []

            def read_loop() -> None:
                while not stop.is_set():
                    outcome = svc.execute("D", PERSON_LISTING)
                    names = outcome.result.items
                    if not (base_count <= len(names) <= base_count + updates):
                        violations.append(f"saw {len(names)} persons")
                        return
                    if any(not str(name).strip() for name in names):
                        violations.append("saw a person with an empty name")
                        return

            readers = [threading.Thread(target=read_loop, daemon=True)
                       for _ in range(8)]
            for reader in readers:
                reader.start()
            for _ in range(updates):
                svc.apply_update(RegisterPerson(stream.build_person()))
            stop.set()
            for reader in readers:
                reader.join(timeout=30)
            assert not violations, violations
            final = svc.execute("D", PERSON_LISTING)
            assert len(final.result.items) == base_count + updates

    def test_result_cache_invalidation_is_path_selective(self, tiny_text):
        """A person insert drops person-touching results and keeps the
        open-auction results cached under the advanced digest."""
        from repro.update import RegisterPerson, UpdateStream

        with QueryService(tiny_text, ("D",), max_workers=2) as svc:
            stream = UpdateStream(svc.store("D"))
            svc.execute("D", 1)     # person exact-match
            svc.execute("D", 2)     # open-auction ordered access
            svc.execute("D", 5)     # closed-auction range
            summary = svc.apply_update(RegisterPerson(stream.build_person()))
            cell = summary["systems"]["D"]
            assert cell["results_kept"] >= 2, cell
            assert cell["results_dropped"] >= 1, cell
            q2 = svc.execute("D", 2)
            assert q2.result_cache_hit, \
                "untouched Q2 must stay cached across the write"
            q5 = svc.execute("D", 5)
            assert q5.result_cache_hit, \
                "untouched Q5 must stay cached across the write"
            q1 = svc.execute("D", 1)
            assert not q1.result_cache_hit, \
                "Q1 touches persons and must have been invalidated"

    def test_write_invalidation_is_per_system(self, tiny_text):
        """Both serving systems advance together; each keeps its own
        untouched entries."""
        from repro.update import RegisterPerson, UpdateStream

        with QueryService(tiny_text, ("C", "D"), max_workers=2) as svc:
            stream = UpdateStream(svc.store("D"))
            svc.execute("C", 2)
            svc.execute("D", 2)
            svc.apply_update(RegisterPerson(stream.build_person()))
            assert svc.execute("C", 2).result_cache_hit
            assert svc.execute("D", 2).result_cache_hit
            assert svc.store("C").document_digest() == \
                svc.store("D").document_digest()

    def test_reload_with_unchanged_content_is_a_noop(self, tiny_text):
        """Regression: reloading identical content must not drop stores,
        plans, results, or indexes."""
        with QueryService(tiny_text, ("D",), max_workers=2) as svc:
            store_before = svc.store("D")
            outcome = svc.execute("D", 1)
            assert not outcome.result_cache_hit
            indexes_before = store_before.indexes
            svc.reload_document(tiny_text)
            assert svc.store("D") is store_before
            assert store_before.indexes is indexes_before
            assert svc.execute("D", 1).result_cache_hit
            assert svc.plan_cache.stats.invalidations == 0

    def test_reload_with_changed_content_still_invalidates(
            self, tiny_text, small_text):
        with QueryService(tiny_text, ("D",), max_workers=2) as svc:
            store_before = svc.store("D")
            svc.execute("D", 1)
            svc.reload_document(small_text)
            assert svc.store("D") is not store_before
            assert store_before.indexes is None
            assert not svc.execute("D", 1).result_cache_hit

    def test_reload_under_concurrent_scatter_readers(self, tiny_text,
                                                     small_text):
        """Regression: a reload must not close the superseded scatter
        executor out from under in-flight scatter queries.

        Eight readers hammer the shard pseudo-system while the main
        thread reloads the document repeatedly; no reader may surface an
        executor-closed error, and every result must match one of the two
        documents' correct answers."""
        from repro.service import ShardSpec

        spec = ShardSpec(shards=2, backends=("F",))
        with QueryService(tiny_text, ("S",), max_workers=8,
                          shard_spec=spec, result_cache_size=0) as svc:
            expected = {
                svc.execute("S", 1).result.serialize(),
            }
            svc.reload_document(small_text)
            expected.add(svc.execute("S", 1).result.serialize())
            stop = threading.Event()
            failures: list[BaseException] = []
            wrong: list[str] = []

            def read() -> None:
                while not stop.is_set():
                    try:
                        text = svc.execute("S", 1).result.serialize()
                    except BaseException as exc:
                        failures.append(exc)
                        return
                    if text not in expected:
                        wrong.append(text)
                        return

            readers = [threading.Thread(target=read) for _ in range(8)]
            for thread in readers:
                thread.start()
            for document in (tiny_text, small_text, tiny_text):
                svc.reload_document(document)
            stop.set()
            for thread in readers:
                thread.join()
            assert not failures, failures[0]
            assert not wrong

    def test_footprint_fallback_is_counted_and_narrow(self, monkeypatch):
        """Regression: only a parse failure may take the broad-footprint
        fallback; walker bugs must surface, and fallbacks are counted."""
        from repro.service import invalidation
        from repro.errors import QuerySyntaxError

        before = invalidation.footprint_fallbacks()
        footprint = invalidation.query_footprint("][ this does not parse 1")
        assert footprint.broad
        assert footprint.tokens == frozenset()
        assert invalidation.footprint_fallbacks() == before + 1

        def boom(_text):
            raise RuntimeError("walker bug")

        monkeypatch.setattr(invalidation, "parse_query", boom)
        with pytest.raises(RuntimeError, match="walker bug"):
            invalidation.query_footprint("this text was never seen before 2")
        assert invalidation.footprint_fallbacks() == before + 1
        monkeypatch.undo()

        def syntax(_text):
            raise QuerySyntaxError("bad", 1, 1)

        monkeypatch.setattr(invalidation, "parse_query", syntax)
        footprint = invalidation.query_footprint("nor was this one 3")
        assert footprint.broad
        assert invalidation.footprint_fallbacks() == before + 2

    def test_footprint_fallback_gauge_exported(self, tiny_text):
        from repro.service import invalidation

        with QueryService(tiny_text, ("D",), max_workers=1) as svc:
            snapshot = svc.export_metrics()
            assert snapshot["gauges"]["service.footprint_fallbacks"] == \
                invalidation.footprint_fallbacks()

    def test_mixed_read_write_workload(self, tiny_text):
        """A write-ratio workload completes with every update applied and
        the serving stores still in lockstep."""
        from repro.update import serialize_store

        spec = WorkloadSpec(clients=4, requests_per_client=8,
                            systems=("C", "D"), write_ratio=0.3,
                            queries=(1, 2, 5, 17, 20), seed=7)
        kinds = [request.kind for stream in WorkloadGenerator(spec).streams()
                 for request in stream]
        expected_updates = kinds.count("update")
        assert 0 < expected_updates < len(kinds)
        with QueryService(tiny_text, ("C", "D"), max_workers=4) as svc:
            snapshot = svc.run_workload(spec)
            assert snapshot["updates"]["count"] == expected_updates
            assert snapshot["completed"] == len(kinds) - expected_updates
            assert svc.updates_applied == expected_updates
            assert serialize_store(svc.store("C")) == \
                serialize_store(svc.store("D"))

    def test_zero_write_ratio_reproduces_read_only_streams(self):
        read_only = WorkloadSpec(clients=2, requests_per_client=10, seed=3)
        mixed_off = WorkloadSpec(clients=2, requests_per_client=10, seed=3,
                                 write_ratio=0.0)
        assert WorkloadGenerator(read_only).flat() == \
            WorkloadGenerator(mixed_off).flat()
