"""Tests for the lightweight DOM, serializer and canonicalizer."""

import io

import pytest

from repro.xmlio.canonical import canonicalize, equivalent
from repro.xmlio.dom import Document, Element, Text
from repro.xmlio.parser import parse
from repro.xmlio.serialize import XMLWriter, serialize


def build_sample() -> Element:
    root = Element("root", {"a": "1"})
    child = root.append(Element("child"))
    child.append(Text("hello "))
    child.append(Element("em")).append(Text("world"))
    root.append(Element("empty"))
    return root


class TestDom:
    def test_find_and_find_all(self):
        root = build_sample()
        assert root.find("child").tag == "child"
        assert root.find("missing") is None
        assert len(root.find_all("empty")) == 1

    def test_iter_document_order(self):
        root = build_sample()
        assert [e.tag for e in root.iter()] == ["root", "child", "em", "empty"]
        assert [e.tag for e in root.iter("em")] == ["em"]

    def test_descendants_excludes_self(self):
        root = build_sample()
        assert [e.tag for e in root.descendants()] == ["child", "em", "empty"]

    def test_text_content_and_immediate(self):
        root = build_sample()
        child = root.find("child")
        assert child.text_content() == "hello world"
        assert child.immediate_text() == "hello "

    def test_append_text_merges(self):
        element = Element("x")
        element.append_text("a")
        element.append_text("b")
        assert len(element.children) == 1
        assert element.immediate_text() == "ab"

    def test_copy_is_deep_and_detached(self):
        root = build_sample()
        duplicate = root.copy()
        assert duplicate.parent is None
        assert serialize(duplicate) == serialize(root)
        duplicate.find("child").attributes["new"] = "1"
        assert "new" not in root.find("child").attributes

    def test_parent_links(self):
        root = build_sample()
        assert root.find("child").parent is root
        assert root.parent is None

    def test_document_single_root(self):
        doc = Document()
        doc.set_root(Element("a"))
        with pytest.raises(ValueError):
            doc.set_root(Element("b"))


class TestSerialize:
    def test_empty_element_self_closes(self):
        assert serialize(Element("a")) == "<a/>"

    def test_attributes_escaped(self):
        element = Element("a", {"x": 'v"<'})
        assert serialize(element) == '<a x="v&quot;&lt;"/>'

    def test_text_escaped(self):
        element = Element("a")
        element.append_text("1 < 2 & 3")
        assert serialize(element) == "<a>1 &lt; 2 &amp; 3</a>"

    def test_indent_mode_round_trips(self):
        root = build_sample()
        pretty = serialize(root, indent=True)
        assert parse(pretty).root.find("child").text_content().strip().startswith("hello")


class TestXMLWriter:
    def test_writer_basic(self):
        out = io.StringIO()
        writer = XMLWriter(out)
        writer.start("a", {"k": "v"})
        writer.leaf("b", "text & more")
        writer.empty("c", {"x": "1"})
        writer.end()
        writer.finish()
        assert out.getvalue() == '<a k="v"><b>text &amp; more</b><c x="1"/></a>'

    def test_writer_detects_unclosed(self):
        writer = XMLWriter(io.StringIO())
        writer.start("a")
        with pytest.raises(ValueError):
            writer.finish()

    def test_writer_depth(self):
        writer = XMLWriter(io.StringIO())
        writer.start("a")
        writer.start("b")
        assert writer.depth == 2
        writer.end()
        writer.end()
        assert writer.depth == 0

    def test_declaration(self):
        out = io.StringIO()
        writer = XMLWriter(out)
        writer.declaration()
        assert out.getvalue().startswith("<?xml")


class TestCanonical:
    def test_attribute_order_normalized(self):
        a = parse('<r b="2" a="1"/>')
        b = parse('<r a="1" b="2"/>')
        assert canonicalize(a) == canonicalize(b)

    def test_text_coalesced(self):
        element = Element("r")
        element.append(Text("a"))
        element.append(Text("b"))
        other = Element("r")
        other.append(Text("ab"))
        assert canonicalize(element) == canonicalize(other)

    def test_ordered_mode_distinguishes_sibling_order(self):
        a = parse("<r><x/><y/></r>")
        b = parse("<r><y/><x/></r>")
        assert canonicalize(a) != canonicalize(b)
        assert canonicalize(a, ordered=False) == canonicalize(b, ordered=False)

    def test_strip_whitespace(self):
        a = parse("<r>\n  <x/>\n</r>")
        b = parse("<r><x/></r>")
        assert canonicalize(a, strip_whitespace=True) == canonicalize(b, strip_whitespace=True)
        assert equivalent(a, b)

    def test_idempotent(self, tiny_document):
        once = canonicalize(tiny_document)
        again = canonicalize(parse(f"{once}"))
        assert once == again
