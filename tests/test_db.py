"""The embedded-database facade: connect / sessions / cursors / transactions.

The core property is the acceptance criterion of the API redesign: every
execution path (direct store, query service, scatter-gather sharding,
updates) is reachable through ``Session.execute`` / ``Session.transaction``,
and ``Cursor.fetchall()`` is bit-identical to the legacy entry points on
tiny and small documents across all seven systems plus the sharded
pseudo-system.
"""

from __future__ import annotations

import pytest

import repro
from repro.benchmark.queries import QUERIES
from repro.benchmark.systems import SYSTEMS, get_profile
from repro.errors import (
    BenchmarkError, ClosedCursorError, ClosedSessionError, TransactionError,
    UnknownSystemError,
)
from repro.update.engine import apply_update, serialize_store
from repro.update.ops import PlaceBid, transaction_token
from repro.xquery.evaluator import evaluate, evaluate_stream
from repro.xquery.planner import compile_query


@pytest.fixture(scope="module")
def tiny_db(tiny_text):
    with repro.connect(tiny_text, systems=tuple(SYSTEMS)) as db:
        yield db


@pytest.fixture(scope="module")
def small_db(small_text):
    with repro.connect(small_text, systems=tuple(SYSTEMS)) as db:
        yield db


@pytest.fixture(scope="module")
def sharded_tiny_db(tiny_text):
    with repro.connect(tiny_text, systems=("F",), shards=3) as db:
        yield db


class TestConnect:
    def test_systems_and_default(self, tiny_db):
        assert tiny_db.systems == tuple(SYSTEMS)
        assert tiny_db.default_system() == "A"

    def test_unknown_system_rejected_at_connect(self, tiny_text):
        with pytest.raises(UnknownSystemError):
            repro.connect(tiny_text, systems=("D", "Z"))

    def test_unknown_system_rejected_at_execute(self, tiny_db):
        session = tiny_db.session()
        with pytest.raises(UnknownSystemError) as info:
            session.execute(1, system="Q")
        assert info.value.system == "Q"
        assert "D" in info.value.available

    def test_unknown_system_is_a_benchmark_error(self, tiny_db):
        """Legacy handlers catching BenchmarkError keep working."""
        with pytest.raises(BenchmarkError):
            tiny_db.session().execute(1, system="Q")

    def test_unknown_query_number(self, tiny_db):
        with pytest.raises(BenchmarkError):
            tiny_db.session().execute(99)

    def test_closed_database_refuses_sessions(self, tiny_text):
        db = repro.connect(tiny_text, systems=("F",))
        db.close()
        with pytest.raises(ClosedSessionError):
            db.session()

    def test_closed_session_refuses_queries(self, tiny_db):
        session = tiny_db.session()
        session.close()
        with pytest.raises(ClosedSessionError):
            session.execute(1)
        with pytest.raises(ClosedSessionError):
            session.prepare(1)
        with pytest.raises(ClosedSessionError):
            session.transaction()


class TestStreamingParity:
    """fetchall() must be bit-identical to the legacy evaluate() path."""

    @pytest.mark.parametrize("query", sorted(QUERIES))
    def test_all_systems_tiny(self, tiny_db, query):
        session = tiny_db.session()
        for system, store in tiny_db.stores.items():
            legacy = evaluate(
                compile_query(QUERIES[query].text, store, get_profile(system)))
            cursor = session.execute(query, system=system)
            assert cursor.streaming
            assert cursor.serialize() == legacy.serialize(), (
                f"Q{query} on {system}")

    @pytest.mark.parametrize("query", sorted(QUERIES))
    def test_system_d_small(self, small_db, query):
        session = small_db.session()
        store = small_db.stores["D"]
        legacy = evaluate(
            compile_query(QUERIES[query].text, store, get_profile("D")))
        assert session.execute(query, system="D").serialize() == legacy.serialize()

    @pytest.mark.parametrize("query", sorted(QUERIES))
    def test_sharded_matches_unsharded(self, sharded_tiny_db, tiny_text, query):
        session = sharded_tiny_db.session()
        cursor = session.execute(query, system="S")
        assert cursor.source == "scatter"
        oracle = session.execute(query, system="F")
        assert cursor.serialize() == oracle.serialize()

    def test_stream_false_matches_stream_true(self, tiny_db):
        session = tiny_db.session()
        for query in (1, 10, 19, 20):
            eager = session.execute(query, system="D", stream=False)
            lazy = session.execute(query, system="D", stream=True)
            assert not eager.streaming and lazy.streaming
            assert eager.serialize() == lazy.serialize()

    def test_streaming_does_not_leak_sequence_bindings(self, tiny_db):
        """A for-clause sequence that is itself a binding construct must
        not stream: its suspended generator would leak bindings into the
        where/return evaluation that the eager evaluator sees unbound."""
        from repro.errors import QueryError
        session = tiny_db.session()
        leaky = ('for $a in (for $b in /site/people/person return $b) '
                 'where $b/name/text() != "" return $a/name/text()')
        with pytest.raises(QueryError):
            session.execute(leaky, system="D", stream=False).fetchall()
        with pytest.raises(QueryError):
            session.execute(leaky, system="D", stream=True).fetchall()

    def test_streaming_guards_udf_variable_reads(self, tiny_db):
        """A declared function's body is dynamically scoped and invisible
        to the sequence walk: calling one from a for-clause sequence must
        disable streaming of that sequence, or a rebound variable leaks
        into later predicate evaluations."""
        session = tiny_db.session()
        query = ('declare function local:same() '
                 '{ string($y/@id) = "item0" }; '
                 'for $y in /site/regions/africa/item '
                 'return for $y in /site/regions/*/item[local:same()] '
                 'return $y/@id')
        eager = session.execute(query, system="F", stream=False).fetchall()
        lazy = session.execute(query, system="F", stream=True).fetchall()
        assert lazy == eager

    def test_evaluate_stream_is_lazy_equal(self, loaded_stores):
        """The evaluator-level surface: list(stream) == eager items."""
        store = loaded_stores["E"]
        compiled = compile_query(QUERIES[14].text, store, get_profile("E"))
        eager = evaluate(compiled)
        streamed = evaluate_stream(compiled)
        result = streamed.drain()
        assert result.serialize() == eager.serialize()


class TestCursor:
    def test_fetchone_then_fetchall(self, tiny_db):
        session = tiny_db.session()
        eager = session.execute(2, system="F", stream=False).fetchall()
        cursor = session.execute(2, system="F")
        first = cursor.fetchone()
        rest = cursor.fetchall()
        assert cursor.rowtext(first) == session.execute(
            2, system="F").rowtext(eager[0])
        assert len(rest) == len(eager) - 1
        assert cursor.rowcount == len(eager)
        assert cursor.fetchone() is None    # exhausted

    def test_fetchmany_batches(self, tiny_db):
        session = tiny_db.session()
        total = len(session.execute(17, system="F").fetchall())
        cursor = session.execute(17, system="F")
        batch = cursor.fetchmany(5)
        assert len(batch) == 5
        assert len(cursor.fetchmany(10_000)) == total - 5

    def test_iteration_streams(self, tiny_db):
        session = tiny_db.session()
        cursor = session.execute(13, system="F")
        seen = sum(1 for _ in cursor)
        assert seen == cursor.rowcount > 0

    def test_closed_cursor_raises(self, tiny_db):
        cursor = tiny_db.session().execute(1, system="F")
        cursor.close()
        with pytest.raises(ClosedCursorError):
            cursor.fetchone()

    def test_result_interop(self, tiny_db):
        """Cursor.result() gives a legacy QueryResult (canonical etc.)."""
        result = tiny_db.session().execute(1, system="F").result()
        assert result.canonical()


class TestPreparedQuery:
    def test_plan_reuse_skips_compilation(self, tiny_db):
        session = tiny_db.session()
        prepared = session.prepare(8, system="B")
        first = prepared.execute()
        again = prepared.execute()
        assert again.plan_cache_hit and again.compile_seconds == 0.0
        assert first.serialize() == again.serialize()

    def test_prepared_matches_adhoc(self, tiny_db):
        session = tiny_db.session()
        prepared = session.prepare(11, system="D")
        assert (prepared.execute().serialize()
                == session.execute(11, system="D").serialize())

    def test_warnings_surface(self, tiny_db):
        prepared = tiny_db.session().prepare(
            "for $x in /site/people/persn return $x", system="D")
        assert any("persn" in warning for warning in prepared.warnings)


class TestTransactionsDirect:
    def test_batch_identical_across_systems(self, small_text):
        with repro.connect(small_text, systems=("D", "G")) as db:
            session = db.session()
            with session.transaction() as txn:
                txn.place_bid("open_auction0", "person1", 10.0,
                              "07/31/2026", "11:00:00")
                txn.close_auction("open_auction0", "07/31/2026")
            assert txn.summary is not None
            assert (serialize_store(db.stores["D"])
                    == serialize_store(db.stores["G"]))
            assert (db.stores["D"].document_digest()
                    == db.stores["G"].document_digest())

    def test_single_digest_advance(self, small_text):
        """A committed batch advances the digest once, over the batch
        token — the same ops applied singly produce a different chain."""
        with repro.connect(small_text, systems=("F",)) as db:
            ops = [
                PlaceBid("open_auction0", "person1", 10.0,
                         "07/31/2026", "11:00:00"),
                PlaceBid("open_auction0", "person2", 5.0,
                         "07/31/2026", "11:01:00"),
            ]
            base_digest = db.document_digest()
            with db.session().transaction() as txn:
                for op in ops:
                    txn.apply(op)
            import hashlib
            expected = hashlib.sha256(
                f"{base_digest}|{transaction_token(ops)}".encode()
            ).hexdigest()[:16]
            assert db.document_digest() == expected

    def test_batch_equals_sequential_document(self, small_text):
        """Same ops, batched vs singly: same final document."""
        from repro.benchmark.systems import make_store
        ops = [
            PlaceBid("open_auction0", "person1", 10.0,
                     "07/31/2026", "11:00:00"),
            PlaceBid("open_auction1", "person2", 4.0,
                     "07/31/2026", "11:02:00"),
        ]
        with repro.connect(small_text, systems=("F",)) as db:
            with db.session().transaction() as txn:
                for op in ops:
                    txn.apply(op)
            batched = serialize_store(db.stores["F"])
        oracle = make_store("F")
        oracle.load(small_text)
        for op in ops:
            apply_update(oracle, op)
        assert batched == serialize_store(oracle)

    def test_failure_keeps_consistent_prefix(self, small_text):
        with repro.connect(small_text, systems=("D", "F")) as db:
            before_digest = db.document_digest()
            session = db.session()
            txn = session.transaction()
            txn.place_bid("open_auction0", "person1", 10.0,
                          "07/31/2026", "11:00:00")
            txn.delete_item("no-such-item")
            with pytest.raises(TransactionError) as info:
                txn.commit()
            assert info.value.applied == 1
            # both stores hold the applied prefix, same document, and the
            # digest reflects exactly the applied ops (per-op chain)
            assert (serialize_store(db.stores["D"])
                    == serialize_store(db.stores["F"]))
            assert (db.stores["D"].document_digest()
                    == db.stores["F"].document_digest() != before_digest)

    def test_exception_in_block_discards(self, small_text):
        with repro.connect(small_text, systems=("F",)) as db:
            before = serialize_store(db.stores["F"])
            with pytest.raises(RuntimeError):
                with db.session().transaction() as txn:
                    txn.place_bid("open_auction0", "person1", 10.0,
                                  "07/31/2026", "11:00:00")
                    raise RuntimeError("client bailed")
            assert serialize_store(db.stores["F"]) == before
            assert txn.summary is None

    def test_rollback_and_reuse_guard(self, small_text):
        with repro.connect(small_text, systems=("F",)) as db:
            txn = db.session().transaction()
            txn.place_bid("open_auction0", "person1", 10.0,
                          "07/31/2026", "11:00:00")
            txn.rollback()
            with pytest.raises(TransactionError):
                txn.commit()
            with pytest.raises(TransactionError):
                txn.apply(PlaceBid("open_auction0", "person1", 1.0,
                                   "07/31/2026", "11:00:00"))

    def test_commit_poisons_open_streaming_cursors(self, small_text):
        """A suspended lazy pipeline must not resume over a mutated
        store: commit invalidates un-exhausted streaming cursors, while
        drained ones are left alone."""
        with repro.connect(small_text, systems=("F",)) as db:
            session = db.session()
            open_cursor = session.execute(2)
            open_cursor.fetchone()              # suspended mid-pipeline
            drained = session.execute(1)
            drained.fetchall()
            with session.transaction() as txn:
                txn.place_bid("open_auction0", "person1", 10.0,
                              "07/31/2026", "11:00:00")
            with pytest.raises(ClosedCursorError, match="re-execute"):
                open_cursor.fetchall()
            assert drained.fetchall() == []     # exhausted: unaffected
            # a fresh cursor sees the committed document
            assert session.execute(2).fetchall()

    def test_empty_transaction_is_noop(self, small_text):
        with repro.connect(small_text, systems=("F",)) as db:
            digest = db.document_digest()
            with db.session().transaction() as txn:
                pass
            assert txn.summary["ops"] == []
            assert db.document_digest() == digest

    def test_sharded_transaction_matches_unsharded(self, small_text):
        """Updates through Session.transaction on a sharded connection
        produce the same document as on a plain store."""
        with repro.connect(small_text, systems=("F",), shards=2) as db:
            session = db.session()
            with session.transaction() as txn:
                txn.place_bid("open_auction0", "person1", 10.0,
                              "07/31/2026", "11:00:00")
                txn.close_auction("open_auction0", "07/31/2026")
            assert (serialize_store(db.stores["S"])
                    == serialize_store(db.stores["F"]))
            # queries on both routes agree post-commit
            assert (session.execute(2, system="S").serialize()
                    == session.execute(2, system="F").serialize())


class TestServiceRoute:
    @pytest.fixture(scope="class")
    def service_db(self, small_text):
        with repro.connect(small_text, systems=("D",), service=True,
                           max_workers=4) as db:
            yield db

    def test_execute_routes_through_service(self, service_db):
        session = service_db.session()
        first = session.execute(1, system="D")
        assert first.source == "service" and not first.streaming
        again = session.execute(1, system="D")
        assert again.result_cache_hit
        assert first.serialize() == again.serialize()

    def test_service_matches_direct(self, service_db, small_text, loaded_stores):
        session = service_db.session()
        for query in (1, 8, 20):
            legacy = evaluate(compile_query(
                QUERIES[query].text, loaded_stores["D"], get_profile("D")))
            assert session.execute(query, system="D").serialize() == legacy.serialize()

    def test_transaction_atomic_commit_and_invalidation(self, small_text):
        with repro.connect(small_text, systems=("D",), service=True) as db:
            session = db.session()
            bidders_query = ('count(/site/open_auctions/open_auction'
                             '[@id = "open_auction0"]/bidder)')
            before = session.execute(bidders_query, system="D").fetchone()
            # warm the result cache with a query the write will invalidate
            # (Q2 reads bidder increases) and one whose footprint the bid
            # cannot touch (Q1 reads person names)
            session.execute(2, system="D")
            session.execute(1, system="D")
            with session.transaction() as txn:
                txn.place_bid("open_auction0", "person1", 25.0,
                              "07/31/2026", "11:00:00")
            cells = txn.summary["systems"]["D"]
            assert cells["results_dropped"] >= 1
            # Q2's cached entry was dropped by the footprint test...
            assert not session.execute(2, system="D").result_cache_hit
            # ...the committed bid is visible...
            after = session.execute(bidders_query, system="D").fetchone()
            assert after == before + 1
            # ...and the unaffected query survived the rekey under the
            # new digest
            assert session.execute(1, system="D").result_cache_hit

    def test_service_failed_transaction_drops_cache(self, small_text):
        with repro.connect(small_text, systems=("F",), service=True) as db:
            session = db.session()
            session.execute(1, system="F")
            txn = session.transaction()
            txn.delete_item("no-such-item")
            with pytest.raises(TransactionError):
                txn.commit()
            outcome = session.execute(1, system="F")
            assert not outcome.result_cache_hit


class TestRunnerShim:
    def test_runner_is_rebased_on_database(self, tiny_text):
        runner = repro.BenchmarkRunner(tiny_text, systems=("D",))
        assert runner.database.stores is runner.stores
        timing, result = runner.run("D", 1)
        assert timing.result_size == len(result)
        assert timing.compile_seconds > 0
