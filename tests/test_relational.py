"""Tests for the relational substrate: tables, indexes, operators, catalog."""

import pytest

from repro.errors import RelationalError
from repro.relational.catalog import Catalog
from repro.relational.index import HashIndex, SortedIndex
from repro.relational.operators import (
    OperatorCounters, anti_join, group_aggregate, hash_join, nested_loop_join,
    project, select, semi_join, sort_rows,
)
from repro.relational.stats import TableStats
from repro.relational.table import Column, ColumnType, Table


def make_people() -> Table:
    table = Table("people", [
        Column("id", ColumnType.INT, nullable=False),
        Column("name", ColumnType.STR, nullable=False),
        Column("age", ColumnType.INT),
    ])
    table.append(id=1, name="ann", age=30)
    table.append(id=2, name="bob", age=None)
    table.append(id=3, name="cid", age=25)
    return table


class TestTable:
    def test_append_and_get(self):
        table = make_people()
        assert len(table) == 3
        assert table.get(0, "name") == "ann"
        assert table.get(1, "age") is None
        assert table.row(2) == (3, "cid", 25)

    def test_coercion(self):
        table = make_people()
        row = table.append(id="4", name="dee", age="40")
        assert table.get(row, "id") == 4
        assert table.get(row, "age") == 40

    def test_coercion_failure(self):
        table = make_people()
        with pytest.raises(RelationalError):
            table.append(id="not-a-number", name="x")

    def test_missing_non_null_column(self):
        table = make_people()
        with pytest.raises(RelationalError):
            table.append(id=9)

    def test_unknown_column_rejected(self):
        table = make_people()
        with pytest.raises(RelationalError):
            table.append(id=9, name="x", bogus=1)

    def test_rows_projection(self):
        table = make_people()
        assert list(table.rows(["name"])) == [("ann",), ("bob",), ("cid",)]

    def test_duplicate_columns_rejected(self):
        with pytest.raises(RelationalError):
            Table("t", [Column("a"), Column("a")])

    def test_no_columns_rejected(self):
        with pytest.raises(RelationalError):
            Table("t", [])

    def test_estimated_bytes_positive(self):
        assert make_people().estimated_bytes() > 0


class TestIndexes:
    def test_hash_lookup(self):
        table = make_people()
        index = HashIndex(table, "name")
        assert index.lookup("bob") == [1]
        assert index.lookup("zzz") == []
        assert index.unique("ann") == 0
        assert index.unique("zzz") is None

    def test_hash_refresh_after_append(self):
        table = make_people()
        index = HashIndex(table, "name")
        table.append(id=4, name="bob", age=1)
        index.refresh()
        assert index.lookup("bob") == [1, 3]

    def test_sorted_range(self):
        table = make_people()
        index = SortedIndex(table, "age")
        assert index.range(25, 30) == [2, 0]
        assert index.range(26, None) == [0]
        assert index.range(None, 26) == [2]
        assert index.range(25, 30, inclusive=False) == [2]

    def test_sorted_excludes_nulls(self):
        table = make_people()
        index = SortedIndex(table, "age")
        assert len(index) == 2
        assert index.count_range(None, None) == 2


class TestOperators:
    def test_select_and_counters(self):
        counters = OperatorCounters()
        rows = [(1,), (2,), (3,)]
        kept = select(rows, lambda r: r[0] > 1, counters)
        assert kept == [(2,), (3,)]
        assert counters.tuples_scanned == 3

    def test_project(self):
        assert project([(1, "a"), (2, "b")], [1]) == [("a",), ("b",)]

    def test_hash_join_basic(self):
        left = [(1, "l1"), (2, "l2")]
        right = [(2, "r2"), (2, "r2b"), (3, "r3")]
        joined = hash_join(left, right, lambda r: r[0], lambda r: r[0])
        assert joined == [(2, "l2", 2, "r2"), (2, "l2", 2, "r2b")]

    def test_hash_join_null_keys_never_match(self):
        joined = hash_join([(None, "x")], [(None, "y")], lambda r: r[0], lambda r: r[0])
        assert joined == []

    def test_nested_loop_join_counts_pairs(self):
        counters = OperatorCounters()
        left = [(i,) for i in range(10)]
        right = [(j,) for j in range(20)]
        out = nested_loop_join(left, right, lambda l, r: l[0] > r[0], counters)
        assert counters.join_pairs_considered == 200
        assert len(out) == sum(min(i, 20) for i in range(10))

    def test_sort_rows_stable(self):
        rows = [(2, "a"), (1, "b"), (2, "c")]
        assert sort_rows(rows, key=lambda r: r[0]) == [(1, "b"), (2, "a"), (2, "c")]

    def test_group_aggregate(self):
        rows = [("x", 1), ("y", 2), ("x", 3)]
        groups = group_aggregate(rows, key=lambda r: r[0],
                                 aggregate=lambda members: sum(m[1] for m in members))
        assert groups == {"x": 4, "y": 2}

    def test_semi_and_anti_join(self):
        rows = [(1,), (2,), (3,)]
        assert semi_join(rows, {2, 3}, lambda r: r[0]) == [(2,), (3,)]
        assert anti_join(rows, {2, 3}, lambda r: r[0]) == [(1,)]


class TestStats:
    def test_gather_counts(self):
        stats = TableStats.gather(make_people())
        assert stats.row_count == 3
        assert stats.distinct["name"] == 3

    def test_join_cardinality_estimate(self):
        a = TableStats(1000, {"k": 100})
        b = TableStats(500, {"k": 50})
        assert a.join_cardinality(b, "k", "k") == 1000 * 500 / 100

    def test_equality_cardinality(self):
        stats = TableStats(1000, {"k": 100})
        assert stats.equality_cardinality("k") == 10
        assert stats.equality_cardinality("unknown") == 100  # default 0.1

    def test_range_default(self):
        assert TableStats(300, {}).range_cardinality() == 100


class TestCatalog:
    def test_create_and_lookup_counted(self):
        catalog = Catalog()
        catalog.create_table("t", [Column("a")])
        before = catalog.metadata_accesses
        catalog.table("t")
        catalog.has_table("nope")
        assert catalog.metadata_accesses == before + 2

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.create_table("t", [Column("a")])
        with pytest.raises(RelationalError):
            catalog.create_table("t", [Column("a")])

    def test_ensure_table_idempotent(self):
        catalog = Catalog()
        first = catalog.ensure_table("t", [Column("a")])
        second = catalog.ensure_table("t", [Column("a")])
        assert first is second

    def test_match_table_names_costs_per_table(self):
        catalog = Catalog()
        for name in ("x/a", "x/b", "y/c"):
            catalog.create_table(name, [Column("v")])
        before = catalog.metadata_accesses
        names = catalog.match_table_names(lambda n: n.startswith("x/"))
        assert names == ["x/a", "x/b"]
        assert catalog.metadata_accesses - before == 3

    def test_analyze_and_stats(self):
        catalog = Catalog()
        table = catalog.create_table("t", [Column("a", ColumnType.INT)])
        table.append(a=1)
        table.append(a=2)
        catalog.analyze()
        assert catalog.stats("t").row_count == 2

    def test_indexes_via_catalog(self):
        catalog = Catalog()
        table = catalog.create_table("t", [Column("a", ColumnType.INT)])
        table.append(a=5)
        hash_ix = catalog.create_hash_index("t", "a")
        sorted_ix = catalog.create_sorted_index("t", "a")
        assert catalog.hash_index("t", "a") is hash_ix
        assert catalog.sorted_index("t", "a") is sorted_ix
        assert catalog.hash_index("t", "zz") is None
        assert hash_ix.lookup(5) == [0]
        assert sorted_ix.range(0, 10) == [0]

    def test_missing_table_raises(self):
        with pytest.raises(RelationalError):
            Catalog().table("ghost")
