"""Architecture-specific behaviour of each store."""

import pytest

from repro.errors import StorageError
from repro.storage.bulkload import bulkload, scan_baseline
from repro.storage.dom_store import DomStore
from repro.storage.fragment_store import FragmentStore
from repro.storage.heap_store import HeapStore
from repro.storage.schema_store import SchemaStore
from repro.storage.shred import shred_to_files
from repro.storage.structural_summary import StructuralSummary
from repro.storage.summary_store import SummaryStore
from repro.storage.tree_store import IndexedTreeStore, TreeStore


class TestHeapStore:
    def test_single_relation_architecture(self, loaded_stores):
        store = loaded_stores["A"]
        assert store.catalog.table_count() == 3  # nodes, texts, attrs

    def test_pre_post_containment(self, loaded_stores):
        store = loaded_stores["A"]
        nodes = store.catalog.table("nodes")
        pres = nodes.column("pre")
        posts = nodes.column("post")
        parents = nodes.column("parent")
        for row in range(1, min(2000, len(nodes))):
            parent = parents[row]
            if parent is None:
                continue
            parent_row = next(r for r in range(len(nodes)) if pres[r] == parent)
            assert pres[parent_row] < pres[row] <= posts[parent_row]

    def test_tag_extent_access(self, loaded_stores):
        store = loaded_stores["A"]
        extent = store.all_with_tag("person")
        assert extent == sorted(extent)
        assert len(extent) > 10


class TestFragmentStore:
    def test_many_tables(self, loaded_stores):
        store = loaded_stores["B"]
        # "Highly fragmenting": far more relations than System A's three.
        assert store.table_count > 100

    def test_paths_extending(self, loaded_stores):
        store = loaded_stores["B"]
        paths = store.paths_extending(("site",), "item")
        assert ("site", "regions", "europe", "item") in paths
        assert len(paths) == 6  # one per region

    def test_child_path_exists(self, loaded_stores):
        store = loaded_stores["B"]
        assert store.child_path_exists(("site",), "people")
        assert not store.child_path_exists(("site",), "nonsense")

    def test_nodes_at_path_is_extent(self, loaded_stores, small_document):
        store = loaded_stores["B"]
        extent = store.nodes_at_path(("site", "people", "person"))
        assert len(extent) == len(small_document.root.find("people").find_all("person"))

    def test_metadata_counted_on_navigation(self, loaded_stores):
        store = loaded_stores["B"]
        before = store.catalog.metadata_accesses
        store.children_by_tag(store.root(), "people")
        assert store.catalog.metadata_accesses > before


class TestSchemaStore:
    def test_typed_tables_exist(self, loaded_stores):
        store = loaded_stores["C"]
        for table in ("person", "item", "open_auction", "closed_auction",
                      "category", "edge", "bidder", "mail", "interest",
                      "watch", "incategory"):
            assert store.table(table) is not None

    def test_person_row_inlines_scalars(self, loaded_stores, small_document):
        store = loaded_stores["C"]
        person_table = store.table("person")
        oracle = small_document.root.find("people").find("person")
        assert person_table.get(0, "name") == oracle.find("name").immediate_text()
        assert person_table.get(0, "id") == oracle.get("id")

    def test_optional_struct_presence_column(self, loaded_stores, small_document):
        store = loaded_stores["C"]
        person_table = store.table("person")
        presences = person_table.column("profile_present")
        oracle_persons = small_document.root.find("people").find_all("person")
        for row in range(min(50, len(oracle_persons))):
            assert bool(presences[row]) == (oracle_persons[row].find("profile") is not None)

    def test_bidder_positions(self, loaded_stores, small_document):
        store = loaded_stores["C"]
        bidder_table = store.table("bidder")
        oracle_bidders = sum(
            len(a.find_all("bidder"))
            for a in small_document.root.find("open_auctions").find_all("open_auction")
        )
        assert len(bidder_table) == oracle_bidders

    def test_fragments_parsed_lazily(self, small_text):
        store = SchemaStore()
        store.load(small_text)
        assert store.stats.fragments_parsed == 0
        regions = store.children_by_tag(store.root(), "regions")[0]
        item = store.descendants_by_tag(regions, "item")[0]
        description = store.children_by_tag(item, "description")[0]
        store.children(description)  # forces a CLOB parse
        assert store.stats.fragments_parsed >= 1

    def test_rejects_non_auction_document(self):
        store = SchemaStore()
        with pytest.raises(StorageError):
            store.load("<other/>")

    def test_container_descendant_fast_path(self, loaded_stores, small_document):
        store = loaded_stores["C"]
        descriptions = store.descendants_by_tag(store.root(), "description")
        expected = sum(1 for _ in small_document.root.iter("description"))
        assert len(descriptions) == expected


class TestSummaryStore:
    def test_summary_counts_match_document(self, loaded_stores, small_document):
        store = loaded_stores["D"]
        assert store.count_path(("site", "people", "person")) == len(
            small_document.root.find("people").find_all("person"))
        assert store.count_path(("site", "no", "such", "path")) == 0

    def test_nodes_at_path(self, loaded_stores):
        store = loaded_stores["D"]
        nodes = store.nodes_at_path(("site", "people", "person"))
        assert all(store.tag(n) == "person" for n in nodes[:5])

    def test_known_tags(self, loaded_stores):
        tags = loaded_stores["D"].known_tags()
        assert "person" in tags and "keyword" in tags
        assert "bogus" not in tags

    def test_summary_paths_through(self, loaded_stores):
        summary = loaded_stores["D"].summary
        entries = summary.paths_through(("site",), "item")
        assert len(entries) == 6
        assert all(entry.path[-1] == "item" for entry in entries)

    def test_compactness_vs_tree_store(self, loaded_stores):
        # Table 1: System D's database is smaller than E's and F's.
        assert loaded_stores["D"].size_bytes() < loaded_stores["F"].size_bytes()
        assert loaded_stores["D"].size_bytes() < loaded_stores["E"].size_bytes()


class TestStructuralSummary:
    def test_build_from_arrays(self):
        tags = ["a", "b", "c", "b"]
        parents = [-1, 0, 1, 0]
        summary = StructuralSummary.build(tags, parents)
        assert summary.count(("a",)) == 1
        assert summary.count(("a", "b")) == 2
        assert summary.count(("a", "b", "c")) == 1
        assert summary.nodes(("a", "b")) == [1, 3]
        assert summary.path_count() == 3
        assert summary.has_tag("c") and not summary.has_tag("z")


class TestTreeStores:
    def test_tag_index_equals_scan(self, loaded_stores):
        indexed = loaded_stores["E"]
        plain = loaded_stores["F"]
        for tag in ("item", "keyword", "person"):
            via_index = indexed.descendants_by_tag(indexed.root(), tag)
            via_scan = plain.descendants_by_tag(plain.root(), tag)
            assert len(via_index) == len(via_scan)

    def test_all_with_tag_document_order(self, loaded_stores):
        extent = loaded_stores["E"].all_with_tag("person")
        assert extent == sorted(extent)

    def test_f_larger_than_e_minus_index(self, loaded_stores):
        # F materialises child lists; E derives children but adds a tag index.
        assert loaded_stores["F"].node_count() == loaded_stores["E"].node_count()

    def test_no_id_index(self, loaded_stores):
        assert not loaded_stores["F"].has_id_index()
        assert loaded_stores["F"].lookup_id("person0") is None


class TestDomStore:
    def test_document_limit_enforced(self):
        store = DomStore(document_limit=100)
        with pytest.raises(StorageError) as excinfo:
            store.load("<site>" + "x" * 200 + "</site>")
        assert "System G" in str(excinfo.value)

    def test_requires_load_before_navigation(self):
        store = DomStore()
        with pytest.raises(StorageError):
            store.root()


class TestBulkload:
    def test_report_fields(self, small_text):
        report = bulkload(TreeStore(), small_text, "F")
        assert report.store_name == "F"
        assert report.seconds > 0
        assert report.database_bytes > 0
        assert report.document_bytes == len(small_text)
        assert report.size_ratio > 1.0

    def test_scan_baseline_faster_than_any_load(self, small_text):
        scan = scan_baseline(small_text)
        load = bulkload(IndexedTreeStore(), small_text)
        assert scan.seconds < load.seconds
        assert scan.events > 1000

    def test_fragmenting_mapping_loads_slowest_of_relational(self, small_text):
        # Table 1 shape: B's bulkload exceeds A's (many-table mapping).
        time_a = min(bulkload(HeapStore(), small_text).seconds for _ in range(2))
        time_b = min(bulkload(FragmentStore(), small_text).seconds for _ in range(2))
        assert time_b > time_a

    def test_summary_store_loads_faster_than_relational(self, small_text):
        time_d = min(bulkload(SummaryStore(), small_text).seconds for _ in range(2))
        time_b = min(bulkload(FragmentStore(), small_text).seconds for _ in range(2))
        assert time_d < time_b


class TestShred:
    @pytest.mark.parametrize("mapping,min_files", [
        ("edge", 3), ("path", 50), ("schema", 11),
    ])
    def test_shred_file_counts(self, tiny_text, tmp_path, mapping, min_files):
        files = shred_to_files(tiny_text, str(tmp_path / mapping), mapping)
        assert len(files) >= min_files
        header = open(files[0], encoding="ascii").readline()
        assert header.startswith("# ")

    def test_shred_rejects_unknown_mapping(self, tiny_text, tmp_path):
        with pytest.raises(StorageError):
            shred_to_files(tiny_text, str(tmp_path), "bogus")

    def test_edge_shred_row_count(self, tiny_text, tmp_path, tiny_document):
        files = shred_to_files(tiny_text, str(tmp_path / "edge"), "edge")
        nodes_file = next(f for f in files if f.endswith("nodes.tbl"))
        rows = sum(1 for line in open(nodes_file, encoding="ascii")) - 1
        assert rows == sum(1 for _ in tiny_document.root.iter())
