"""Tests for the per-system planner: access paths, joins, optimization effort."""

import pytest

from repro.benchmark.queries import query_text
from repro.benchmark.systems import get_profile
from repro.xquery.ast import LetClause, walk
from repro.xquery.evaluator import evaluate
from repro.xquery.planner import SystemProfile, compile_query

Q8_LIKE = """
for $p in /site/people/person
let $a := for $t in /site/closed_auctions/closed_auction
          where $t/buyer/@person = $p/@id
          return $t
return count($a)
"""

Q11_LIKE = """
for $p in /site/people/person
let $l := for $i in /site/open_auctions/open_auction/initial
          where $p/profile/@income > 5000 * exactly-one($i/text())
          return $i
return count($l)
"""


def _join_plans(compiled):
    return list(compiled.join_plans.values())


class TestAccessPaths:
    def test_id_lookup_annotation(self, loaded_stores):
        store = loaded_stores["D"]
        compiled = compile_query(query_text(1), store, get_profile("D"))
        kinds = {plan.kind for plan in compiled.path_plans.values()}
        assert "id_lookup" in kinds

    def test_no_id_lookup_without_index(self, loaded_stores):
        store = loaded_stores["F"]
        compiled = compile_query(query_text(1), store, get_profile("F"))
        kinds = {plan.kind for plan in compiled.path_plans.values()}
        assert "id_lookup" not in kinds

    def test_path_index_for_summary_store(self, loaded_stores):
        store = loaded_stores["D"]
        compiled = compile_query("/site/people/person/name", store, get_profile("D"))
        kinds = {plan.kind for plan in compiled.path_plans.values()}
        assert "path_index" in kinds

    def test_id_lookup_execution_matches_scan(self, loaded_stores):
        for system in ("A", "D", "F"):
            store = loaded_stores[system]
            compiled = compile_query(query_text(1), store, get_profile(system))
            result = evaluate(compiled)
            assert len(result) == 1


class TestJoinPlanning:
    def test_hash_join_detected(self, loaded_stores):
        compiled = compile_query(Q8_LIKE, loaded_stores["D"], get_profile("D"))
        plans = _join_plans(compiled)
        assert len(plans) == 1
        assert plans[0].strategy == "hash"
        assert plans[0].op == "="

    def test_sorted_join_for_inequality_on_d(self, loaded_stores):
        compiled = compile_query(Q11_LIKE, loaded_stores["D"], get_profile("D"))
        plans = _join_plans(compiled)
        assert len(plans) == 1
        assert plans[0].strategy == "sorted"

    def test_inequality_stays_nlj_on_relational(self, loaded_stores):
        for system in ("A", "B", "C"):
            compiled = compile_query(Q11_LIKE, loaded_stores[system], get_profile(system))
            assert _join_plans(compiled) == []

    def test_no_rewrites_for_g(self, loaded_stores):
        compiled = compile_query(Q8_LIKE, loaded_stores["G"], get_profile("G"))
        assert _join_plans(compiled) == []

    def test_c_depth_limit_on_q9(self, loaded_stores):
        # The paper's Q9 anomaly: C decorrelates only the first join.
        compiled_c = compile_query(query_text(9), loaded_stores["C"], get_profile("C"))
        compiled_d = compile_query(query_text(9), loaded_stores["D"], get_profile("D"))
        assert len(compiled_c.join_plans) == 1
        assert len(compiled_d.join_plans) == 2

    def test_join_results_identical_with_and_without_rewrite(self, loaded_stores):
        store = loaded_stores["D"]
        with_join = evaluate(compile_query(Q8_LIKE, store, get_profile("D")))
        naive = SystemProfile(name="naive", optimizer="none", join_rewrite_depth=0)
        without = evaluate(compile_query(Q8_LIKE, store, naive))
        assert with_join.items == without.items

    def test_sorted_join_results_identical(self, loaded_stores):
        store = loaded_stores["D"]
        with_join = evaluate(compile_query(Q11_LIKE, store, get_profile("D")))
        naive = SystemProfile(name="naive", optimizer="none", join_rewrite_depth=0)
        without = evaluate(compile_query(Q11_LIKE, store, naive))
        assert with_join.items == without.items


class TestCompileEffort:
    def test_b_touches_more_metadata_than_a(self, loaded_stores):
        # Table 2: the fragmenting mapping's compile-time metadata weight.
        compiled_a = compile_query(query_text(2), loaded_stores["A"], get_profile("A"))
        compiled_b = compile_query(query_text(2), loaded_stores["B"], get_profile("B"))
        assert compiled_b.metadata_accesses > compiled_a.metadata_accesses

    def test_exhaustive_optimizer_considers_most_plans(self, loaded_stores):
        compiled_a = compile_query(query_text(3), loaded_stores["A"], get_profile("A"))
        compiled_b = compile_query(query_text(3), loaded_stores["B"], get_profile("B"))
        compiled_f = compile_query(query_text(3), loaded_stores["F"], get_profile("F"))
        assert compiled_a.plans_considered > compiled_b.plans_considered
        assert compiled_b.plans_considered > compiled_f.plans_considered

    def test_warning_for_unknown_tag(self, loaded_stores):
        store = loaded_stores["D"]  # has known_tags()
        compiled = compile_query("/site/people/persn", store, get_profile("D"))
        assert any("persn" in w for w in compiled.warnings)

    def test_no_warning_for_valid_paths(self, loaded_stores):
        compiled = compile_query(query_text(1), loaded_stores["D"], get_profile("D"))
        assert compiled.warnings == []

    def test_no_warnings_without_known_tags(self, loaded_stores):
        compiled = compile_query("/site/peple", loaded_stores["F"], get_profile("F"))
        assert compiled.warnings == []
