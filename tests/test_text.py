"""Tests for the vocabulary and text generator."""

import re

import pytest

from repro.rng.distributions import RandomSource
from repro.text.generator import TextGenerator
from repro.text.vocabulary import Vocabulary, default_vocabulary


class TestVocabulary:
    def test_size(self):
        assert len(Vocabulary(500)) == 500
        assert len(default_vocabulary()) == 17_000

    def test_words_distinct(self):
        vocab = Vocabulary(5000)
        assert len(set(vocab.words)) == 5000

    def test_frequent_words_short(self):
        vocab = Vocabulary(17_000)
        first100 = sum(len(vocab.word(i)) for i in range(100)) / 100
        last100 = sum(len(vocab.word(i)) for i in range(16_900, 17_000)) / 100
        assert first100 < last100

    def test_ascii_only(self):
        vocab = Vocabulary(2000)
        for word in vocab.words:
            assert word.isascii() and word.isalpha() and word == word.lower()

    def test_anchor_insertion(self):
        vocab = Vocabulary(1000, anchors={10: "gold"})
        assert vocab.word(10) == "gold"
        assert vocab.contains("gold")

    def test_anchor_rank_out_of_range(self):
        with pytest.raises(ValueError):
            Vocabulary(10, anchors={100: "gold"})

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Vocabulary(0)

    def test_zipf_sampling_prefers_low_ranks(self):
        vocab = Vocabulary(1000)
        src = RandomSource.from_seed(1)
        counts = {}
        for _ in range(5000):
            word = vocab.sample(src)
            counts[word] = counts.get(word, 0) + 1
        top_word = vocab.word(0)
        # P(rank 0) = 1/H(1000) ~= 13%, so ~650 expected out of 5000.
        assert counts.get(top_word, 0) > 400


class TestTextGenerator:
    @pytest.fixture()
    def gen(self):
        return TextGenerator(Vocabulary(500))

    @pytest.fixture()
    def src(self):
        return RandomSource.from_seed(42)

    def test_sentence_word_count(self, gen, src):
        for _ in range(50):
            words = gen.sentence(src, 4, 8).split(" ")
            assert 4 <= len(words) <= 8

    def test_person_name_format(self, gen, src):
        for _ in range(20):
            name = gen.person_name(src)
            first, last = name.split(" ")
            assert first[0].isupper() and last[0].isupper()

    def test_email_format(self, gen, src):
        email = gen.email(src, "Ada Lovelace")
        assert email.startswith("mailto:ada.lovelace")
        assert "@" in email

    def test_phone_format(self, gen, src):
        assert re.fullmatch(r"\+\d{1,2} \(\d{2,3}\) \d{7,8}", gen.phone(src))

    def test_date_format(self, gen, src):
        for _ in range(50):
            month, day, year = gen.date(src).split("/")
            assert 1 <= int(month) <= 12
            assert 1 <= int(day) <= 28
            assert 1998 <= int(year) <= 2001

    def test_time_format(self, gen, src):
        assert re.fullmatch(r"\d{2}:\d{2}:\d{2}", gen.time(src))

    def test_amount_positive_two_decimals(self, gen, src):
        for _ in range(100):
            amount = gen.amount(src, 40.0)
            assert re.fullmatch(r"\d+\.\d{2}", amount)
            assert float(amount) > 0

    def test_zipcode_five_digits(self, gen, src):
        assert re.fullmatch(r"\d{5}", gen.zipcode(src))

    def test_creditcard_format(self, gen, src):
        assert re.fullmatch(r"\d{4} \d{4} \d{4} \d{4}", gen.creditcard(src))

    def test_payment_type_distinct_methods(self, gen, src):
        for _ in range(50):
            methods = gen.payment_type(src).split(", ")
            assert 1 <= len(methods) <= 3
            assert len(set(methods)) == len(methods)

    def test_homepage_from_name(self, gen, src):
        page = gen.homepage(src, "Ada Lovelace")
        assert page.startswith("http://www.")
        assert "ada/lovelace" in page

    def test_deterministic_given_source(self, gen):
        a = TextGenerator(Vocabulary(500))
        out1 = a.paragraph(RandomSource.from_seed(9))
        out2 = gen.paragraph(RandomSource.from_seed(9))
        assert out1 == out2

    def test_keyword_short(self, gen, src):
        for _ in range(50):
            assert 1 <= len(gen.keyword(src).split(" ")) <= 3
