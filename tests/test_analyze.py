"""The static analyzer: rules, suppressions, baseline, gate, CLI.

The seeded fixture trees under ``tests/lint_fixtures`` carry exactly
one known violation per rule (plus suppressed variants); the whole-repo
clean run is the live acceptance criterion — ``xmark lint`` must stay
exit 0 against the committed baseline.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analyze import (
    ALL_RULES, Project, build_lock_graph, default_baseline_path,
    default_src_root, find_lock_cycles, load_baseline, run_lint,
    save_baseline,
)
from repro.cli import main as cli_main

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
SEEDED = FIXTURES / "seeded"
SUPPRESSED = FIXTURES / "suppressed"


@pytest.fixture(scope="module")
def seeded():
    return run_lint(SEEDED, package="repro")


@pytest.fixture(scope="module")
def suppressed():
    return run_lint(SUPPRESSED, package="repro")


def by_rule(result, rule):
    return [f for f in result.findings if f.rule == rule]


class TestSeededFixtures:
    """One known violation per rule, all reported as new."""

    def test_gate_fails(self, seeded):
        assert not seeded.ok
        assert len(seeded.new) == 7

    def test_async_blocking(self, seeded):
        hits = by_rule(seeded, "async-blocking")
        messages = [f.message for f in hits]
        assert any("time.sleep" in m for m in messages)
        assert any("_flush_lock" in m for m in messages)
        # the nested def routed through the pool must stay legal
        assert all("routed" not in f.symbol for f in hits)

    def test_lock_discipline_cycle(self, seeded):
        hits = by_rule(seeded, "lock-discipline")
        assert len(hits) == 1
        assert "lock-order cycle" in hits[0].message
        assert "_debit" in hits[0].message and "_credit" in hits[0].message
        assert hits[0].extra["witnesses"]  # concrete acquisition sites

    def test_shared_state(self, seeded):
        hits = by_rule(seeded, "shared-state")
        assert [f.symbol for f in hits] == \
            ["repro.service.state_bad:Registry.put"]
        # __init__ writes and the locked read stay legal
        assert all(f.line != 8 for f in hits)

    def test_error_taxonomy(self, seeded):
        messages = [f.message for f in by_rule(seeded, "error-taxonomy")]
        assert any("swallows the error" in m for m in messages)
        assert any("raise ValueError" in m for m in messages)

    def test_resource_hygiene(self, seeded):
        hits = by_rule(seeded, "resource-hygiene")
        assert len(hits) == 1
        assert hits[0].path == "repro/storage/leak_bad.py"


class TestSuppressions:
    def test_justified_markers_silence_everything(self, suppressed):
        assert suppressed.ok
        assert all(f.suppressed for f in suppressed.findings)
        assert len(suppressed.findings) == 6
        assert all(f.suppress_reason for f in suppressed.findings)

    def test_reasonless_marker_is_flagged(self, tmp_path):
        mod = tmp_path / "repro" / "service" / "latch.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(
            "import threading\n\n\n"
            "class Latch:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._set = False\n\n"
            "    def fire(self):\n"
            "        self._set = True  # lint: ok(shared-state)\n",
            encoding="utf-8")
        result = run_lint(tmp_path, package="repro")
        rules = {f.rule for f in result.new}
        assert rules == {"suppression-hygiene"}
        assert not any(f.rule == "shared-state" for f in result.new)

    def test_marker_for_other_rule_does_not_silence(self, tmp_path):
        mod = tmp_path / "repro" / "storage" / "leaky.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(
            "import json\n\n\n"
            "def read(path):\n"
            "    # lint: ok(shared-state) — wrong rule id\n"
            "    return json.load(open(path))\n",
            encoding="utf-8")
        result = run_lint(tmp_path, package="repro")
        assert any(f.rule == "resource-hygiene" and not f.suppressed
                   for f in result.new)


class TestBaseline:
    def test_roundtrip_silences_known_findings(self, tmp_path, seeded):
        baseline = tmp_path / "baseline.json"
        save_baseline(baseline, seeded.findings)
        again = run_lint(SEEDED, package="repro", baseline=baseline)
        assert again.ok
        assert len(again.baselined) == len(seeded.new)

    def test_fingerprints_survive_line_drift(self, seeded):
        f = seeded.new[0]
        before = f.fingerprint
        f.line += 40
        assert f.fingerprint == before

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == set()


class TestRepoClean:
    """The live acceptance criterion: the shipped tree lints clean."""

    def test_repo_lint_is_clean(self):
        result = run_lint(default_src_root(), package="repro",
                          baseline=default_baseline_path())
        assert result.ok, "\n".join(f.format() for f in result.new)
        # the committed baseline carries no debt
        assert load_baseline(default_baseline_path()) == set()
        # every shipped suppression carries its justification
        for finding in result.findings:
            if finding.suppressed:
                assert finding.suppress_reason

    def test_lock_registry_harvests_known_sites(self):
        project = Project.load(default_src_root(), package="repro")
        expected = {
            "repro.service.service:QueryService._update_lock",
            "repro.service.service:QueryService._admission",
            "repro.service.cache:LRUCache._lock",
            "repro.server.client:WireClient._lock",
            "repro.shard.scatter:ScatterGatherExecutor._gates",
            "repro.shard.scatter:ScatterGatherExecutor._rebuild_locks",
            "repro.obs.trace:Tracer._lock",
            "repro.obs.metrics:MetricsRegistry._lock",
            "repro.storage.schema_store:SchemaStore._frag_cache_lock",
            "repro.service.invalidation:_fallback_lock",
        }
        assert expected <= set(project.locks)
        assert project.locks[
            "repro.service.service:QueryService._update_lock"].kind == \
            "RLock"
        assert project.locks[
            "repro.service.service:QueryService._admission"].collection

    def test_static_lock_graph_is_acyclic(self):
        project = Project.load(default_src_root(), package="repro")
        edges = build_lock_graph(project)
        assert find_lock_cycles(edges) == []
        # the interprocedural edge the service relies on is proven:
        # apply_update holds the update lock while draining admission
        assert any(a.endswith("QueryService._update_lock")
                   and b.endswith("QueryService._admission")
                   for a, b in edges)


class TestCli:
    def test_lint_exits_1_on_seeded_tree(self, capsys):
        code = cli_main(["lint", "--root", str(SEEDED),
                         "--package", "repro", "-q"])
        assert code == 1

    def test_lint_exits_0_on_suppressed_tree(self, capsys):
        code = cli_main(["lint", "--root", str(SUPPRESSED),
                         "--package", "repro", "-q"])
        assert code == 0

    def test_json_report_matches_emit_schema(self, tmp_path, capsys):
        out = tmp_path / "lint-report.json"
        code = cli_main(["lint", "--root", str(SEEDED), "--package",
                         "repro", "-q", "--json", str(out)])
        assert code == 1
        report = json.loads(out.read_text(encoding="utf-8"))
        # the benchmarks/_emit.py skeleton, record for record
        assert set(report) >= {"machine_info", "commit_info", "benchmarks",
                               "version", "config", "acceptance"}
        names = {rec["name"] for rec in report["benchmarks"]}
        assert names == {cls.id for cls in ALL_RULES}
        for rec in report["benchmarks"]:
            assert set(rec) == {"group", "name", "fullname", "params",
                                "stats", "extra_info"}
            stats = rec["stats"]
            for key in ("min", "max", "mean", "stddev"):
                assert isinstance(stats[key], float)
            assert stats["rounds"] == 1 and stats["iterations"] == 1
        assert report["acceptance"]["ok"] is False
        assert report["acceptance"]["new_findings"] == 7

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for cls in ALL_RULES:
            assert cls.id in out
