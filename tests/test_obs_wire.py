"""Distributed tracing over the wire: joined profiles, sampling, the
structured query log, and the live ops surface.

The joined-profile tests reuse PR 6's probe-count oracle: the span a
remote ``cursor.profile()`` shows for the server's execution must carry
the same ``index_probes`` as an embedded run of the same query — and on
System C (where every lookup flows through the evaluator) the same
count as the store's own ``stats.index_lookups`` delta measured around a
completely untraced ``evaluate()``.
"""

from __future__ import annotations

import json
import socket
import struct

import pytest

import repro
from repro.benchmark.queries import query_text
from repro.benchmark.systems import get_profile
from repro.errors import QuerySyntaxError
from repro.obs.querylog import (
    QUERY_LOG_SCHEMA_VERSION, QueryLogWriter, span_breakdown,
)
from repro.obs.trace import TraceLogWriter, TraceSampler, Tracer
from repro.server import (
    PROTOCOL_VERSION, XMarkServer, connect_url, serve_in_thread,
)
from repro.xquery.evaluator import evaluate
from repro.xquery.planner import compile_query

ALL_QUERIES = tuple(range(1, 21))


@pytest.fixture(scope="module")
def traced_served(tiny_text):
    """A wire server whose database traces, plus the database."""
    database = repro.connect(tiny_text, systems=("C", "D"), tracing=True)
    server = XMarkServer(queue_depth=64, tracer=database.tracer)
    server.add_document("auction", database, owned=True)
    handle = serve_in_thread(server)
    yield handle, database, server
    handle.stop()


@pytest.fixture()
def traced_remote(traced_served):
    handle, _database, _server = traced_served
    database = connect_url(handle.url, tracing=True)
    yield database
    database.close()


def raw_connection(handle) -> socket.socket:
    sock = socket.create_connection((handle.host, handle.port), timeout=10.0)
    sock.settimeout(10.0)
    return sock


def raw_send(sock: socket.socket, payload: dict) -> None:
    body = json.dumps(payload).encode("utf-8")
    sock.sendall(struct.pack(">I", len(body)) + body)


def raw_recv(sock: socket.socket) -> dict | None:
    header = b""
    while len(header) < 4:
        chunk = sock.recv(4 - len(header))
        if not chunk:
            return None
        header += chunk
    (length,) = struct.unpack(">I", header)
    body = b""
    while len(body) < length:
        chunk = sock.recv(length - len(body))
        if not chunk:
            return None
        body += chunk
    return json.loads(body)


def raw_hello(sock: socket.socket, tenant: str | None = None) -> dict:
    raw_send(sock, {"kind": "hello", "protocol": PROTOCOL_VERSION,
                    "document": "auction", "tenant": tenant})
    reply = raw_recv(sock)
    assert reply is not None and reply["kind"] == "welcome"
    return reply


def probe_count(span) -> int:
    node = span.find("evaluator.eval") or span.find("evaluator.stream")
    assert node is not None, "no evaluator span in the tree"
    return node.attrs["index_probes"]


# -- joined client+server profiles ----------------------------------------------------


class TestJoinedRemoteProfiles:
    @pytest.mark.parametrize("query", ALL_QUERIES)
    def test_joined_profile_matches_embedded(self, traced_served,
                                             traced_remote, query):
        _, database, _ = traced_served
        embedded = database.session().execute(query, system="D",
                                              stream=False)
        embedded.fetchall()
        expected = probe_count(embedded.profile())

        cursor = traced_remote.session().execute(query, system="D")
        rows = cursor.fetchall()
        root = cursor.profile()
        assert root is not None and root.finished
        assert root.name == "query"
        assert root.attrs["source"] == "wire"
        assert root.attrs["trace_id"]
        # The server's subtree came back over the wire and was grafted
        # under the client root: planner and evaluator both visible.
        assert root.find("plan") is not None
        assert probe_count(root) == expected
        assert root.attrs["rows"] == len(rows)

    @pytest.mark.parametrize("query", (1, 5, 8))
    def test_probe_count_matches_untraced_stats_delta(self, traced_served,
                                                      traced_remote, query):
        # PR 6's oracle, now end-to-end over the socket: on C every
        # index lookup flows through the evaluator, so the joined tree's
        # probe count must equal the store's counter delta around an
        # untraced raw execution.
        _, database, _ = traced_served
        store = database.store("C")
        compiled = compile_query(query_text(query), store, get_profile("C"))
        before = store.stats.index_lookups
        evaluate(compiled)
        delta = store.stats.index_lookups - before

        cursor = traced_remote.session().execute(query, system="C")
        cursor.fetchall()
        assert probe_count(cursor.profile()) == delta

    def test_profile_none_when_client_untraced(self, traced_served):
        handle, _, _ = traced_served
        with connect_url(handle.url) as remote:
            cursor = remote.session().execute(1, system="D")
            cursor.fetchall()
            assert cursor.profile() is None


# -- wire trace context and sampling --------------------------------------------------


@pytest.fixture(scope="module")
def sampled_off_served(tiny_text):
    """A tracing-capable server that head-samples nothing (rate 0)."""
    database = repro.connect(tiny_text, systems=("D",), tracing=True)
    server = XMarkServer(queue_depth=64, tracer=database.tracer,
                         trace_sample_rate=0.0)
    server.add_document("auction", database, owned=True)
    handle = serve_in_thread(server)
    yield handle, database, server
    handle.stop()


class TestWireTraceContext:
    def test_unsampled_request_gets_no_span(self, sampled_off_served):
        handle, _, _ = sampled_off_served
        sock = raw_connection(handle)
        try:
            raw_hello(sock)
            raw_send(sock, {"kind": "execute", "system": "D",
                            "query": query_text(1), "fetch": 1000})
            reply = raw_recv(sock)
            assert reply["kind"] == "cursor" and reply["done"]
            assert "span" not in reply
        finally:
            sock.close()

    def test_client_context_overrides_head_sampling(self, sampled_off_served):
        # sampled=True in the inbound trace context wins over the
        # server's rate-0 head sampler: the subtree still comes back.
        handle, _, _ = sampled_off_served
        with connect_url(handle.url, tracing=True) as remote:
            cursor = remote.session().execute(1, system="D")
            cursor.fetchall()
            root = cursor.profile()
            assert root.children, "server subtree missing from joined tree"
            assert root.find("plan") is not None

    def test_explicit_unsampled_context_is_honored(self, sampled_off_served):
        handle, _, _ = sampled_off_served
        sock = raw_connection(handle)
        try:
            raw_hello(sock)
            raw_send(sock, {"kind": "execute", "system": "D",
                            "query": query_text(1), "fetch": 1000,
                            "trace": {"trace_id": "ab12cd34ef56",
                                      "parent": "ab12cd34ef56/0",
                                      "sampled": False}})
            reply = raw_recv(sock)
            assert reply["kind"] == "cursor" and "span" not in reply
        finally:
            sock.close()

    def test_malformed_trace_context_is_dropped_not_refused(
            self, sampled_off_served):
        handle, _, _ = sampled_off_served
        sock = raw_connection(handle)
        try:
            raw_hello(sock)
            for junk in ("garbage", 17, {"sampled": True}, ["x"]):
                raw_send(sock, {"kind": "execute", "system": "D",
                                "query": query_text(1), "fetch": 1000,
                                "trace": junk})
                reply = raw_recv(sock)
                assert reply["kind"] == "cursor", f"trace={junk!r} refused"
        finally:
            sock.close()


# -- error-path span hygiene ----------------------------------------------------------


class TestErrorSpanHygiene:
    @pytest.fixture()
    def error_served(self, tiny_text):
        tracer = Tracer()
        database = repro.connect(tiny_text, systems=("D",))
        # Head sampling off: only the always-keep-on-error tail rule can
        # retain a server.request span here.
        server = XMarkServer(queue_depth=64, tracer=tracer,
                             trace_sample_rate=0.0)
        server.add_document("auction", database, owned=True)
        handle = serve_in_thread(server)
        yield handle, server, tracer
        handle.stop()

    @pytest.mark.parametrize("request_payload, code", (
        ({"kind": "execute", "system": "Z", "query": "/site"},
         "unknown_system"),
        ({"kind": "execute", "system": "D", "query": "for $x in"},
         "query_syntax"),
    ))
    def test_error_span_carries_wire_code(self, error_served,
                                          request_payload, code):
        # Raw requests so the error happens *server-side* (the client
        # facade refuses an unknown system before it ever hits the wire).
        handle, server, tracer = error_served
        sock = raw_connection(handle)
        try:
            raw_hello(sock)
            raw_send(sock, request_payload)
            reply = raw_recv(sock)
            assert reply["kind"] == "error" and reply["code"] == code
            raw_send(sock, {"kind": "ping"})     # serialize past the finally
            assert raw_recv(sock)["kind"] == "pong"
        finally:
            sock.close()
        spans = [root for root in tracer.roots
                 if root.name == "server.request"
                 and root.attrs.get("error") == code]
        assert spans, f"no server.request span finished with error={code}"
        counters = server.registry.snapshot()["counters"]
        assert counters[f'server.errors_total{{code="{code}"}}'] >= 1

    def test_successful_requests_leave_no_roots_at_rate_zero(
            self, error_served):
        handle, _, tracer = error_served
        with connect_url(handle.url) as remote:
            remote.session().execute(1, system="D").fetchall()
        assert not [root for root in tracer.roots
                    if root.name == "server.request"
                    and "error" not in root.attrs]


# -- head sampler units ---------------------------------------------------------------


class TestTraceSampler:
    def test_deterministic_across_instances(self):
        first = TraceSampler(0.5, seed=7)
        second = TraceSampler(0.5, seed=7)
        decisions = [first.sample("acme") for _ in range(200)]
        assert decisions == [second.sample("acme") for _ in range(200)]
        assert any(decisions) and not all(decisions)

    def test_rate_bounds_short_circuit(self):
        assert all(TraceSampler(1.0).sample("t") for _ in range(50))
        assert not any(TraceSampler(0.0).sample("t") for _ in range(50))

    def test_observed_rate_tracks_configured_rate(self):
        sampler = TraceSampler(0.25, seed=11)
        kept = sum(sampler.sample("acme") for _ in range(4000))
        assert 0.20 < kept / 4000 < 0.30

    def test_per_tenant_rates_and_stream_independence(self):
        sampler = TraceSampler(0.5, per_tenant={"noisy": 0.0, "vip": 1.0},
                               seed=3)
        assert sampler.rate_for("noisy") == 0.0
        assert sampler.rate_for("vip") == 1.0
        assert sampler.rate_for("other") == 0.5
        assert not any(sampler.sample("noisy") for _ in range(50))
        assert all(sampler.sample("vip") for _ in range(50))
        # Each tenant draws from its own stream: interleaving draws for
        # another tenant must not perturb a tenant's decision sequence.
        solo = TraceSampler(0.5, seed=9)
        expected = [solo.sample("acme") for _ in range(100)]
        mixed = TraceSampler(0.5, seed=9)
        got = []
        for _ in range(100):
            got.append(mixed.sample("acme"))
            mixed.sample("interloper")
        assert got == expected

    def test_tail_rules_keep_slow_and_errored(self):
        sampler = TraceSampler(0.0, slow_ms=5.0)
        assert sampler.keep(True, 0.1)
        assert not sampler.keep(False, 0.1)
        assert sampler.keep(False, 5.0)          # slow query: always kept
        assert sampler.keep(False, 0.1, error=True)
        no_tail = TraceSampler(0.0)
        assert not no_tail.keep(False, 10_000.0)


# -- size-bounded rotation ------------------------------------------------------------


class TestLogRotation:
    def _finished_span(self, tracer):
        span = tracer.begin("query", payload="x" * 40)
        span.finish()
        return span

    def test_trace_log_rotates_whole_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer()
        writer = TraceLogWriter(str(path), max_bytes=400, keep=2)
        for _ in range(30):
            writer(self._finished_span(tracer))
        writer.close()
        rotated = sorted(p.name for p in tmp_path.iterdir())
        assert path.name in rotated
        assert f"{path.name}.1" in rotated
        assert f"{path.name}.3" not in rotated      # keep bound honored
        for name in rotated:
            for line in (tmp_path / name).read_text().splitlines():
                record = json.loads(line)              # no straddled lines
                assert record["span"]["name"] == "query"
        assert (tmp_path / f"{path.name}.1").stat().st_size <= 400 + 200

    def test_query_log_rotates(self, tmp_path):
        path = tmp_path / "queries.jsonl"
        writer = QueryLogWriter(str(path), max_bytes=300, keep=2)
        for index in range(40):
            writer.record(source="server", tenant="acme", query=index,
                          duration_ms=1.0)
        writer.close()
        names = sorted(p.name for p in tmp_path.iterdir())
        assert {path.name, f"{path.name}.1", f"{path.name}.2"} <= set(names)
        assert f"{path.name}.3" not in names
        for line in path.read_text().splitlines():
            assert json.loads(line)["v"] == QUERY_LOG_SCHEMA_VERSION


# -- the structured query log ---------------------------------------------------------


class TestQueryLog:
    def test_writer_drops_none_fields(self, tmp_path):
        path = tmp_path / "q.jsonl"
        writer = QueryLogWriter(str(path))
        writer.record(source="test", tenant="acme", error=None, rows=3)
        writer.close()
        record = json.loads(path.read_text())
        assert record["v"] == QUERY_LOG_SCHEMA_VERSION
        assert record["source"] == "test" and record["rows"] == 3
        assert "error" not in record and record["ts"] > 0

    def test_span_breakdown_folds_the_tree(self):
        tracer = Tracer()
        root = tracer.begin("query")
        with tracer.activate(root):
            with tracer.span("plan"):
                with tracer.span("plan.access_path", kind="id_index"):
                    pass
            with tracer.span("evaluator.eval", index_probes=7):
                pass
            with tracer.span("scatter.merge"):
                pass
        root.finish()
        breakdown = span_breakdown(root)
        assert breakdown["index_probes"] == 7
        assert breakdown["access_paths"] == ["id_index"]
        assert breakdown["plan_ms"] >= 0.0
        assert breakdown["scan_ms"] >= 0.0
        assert breakdown["merge_ms"] >= 0.0

    def test_server_records_every_query(self, tiny_text, tmp_path):
        path = tmp_path / "server_queries.jsonl"
        database = repro.connect(tiny_text, systems=("D",))
        server = XMarkServer(queue_depth=64, query_log=str(path))
        server.add_document("auction", database, owned=True)
        with serve_in_thread(server) as handle:
            with connect_url(handle.url, tenant="acme") as remote:
                session = remote.session()
                expected_rows = len(session.execute(1).fetchall())
                with pytest.raises(QuerySyntaxError):
                    session.execute("for $x in")
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert len(records) == 2
        ok, failed = records
        assert ok["v"] == QUERY_LOG_SCHEMA_VERSION
        assert ok["source"] == "server" and ok["tenant"] == "acme"
        assert ok["system"] == "D" and ok["rows"] == expected_rows
        assert ok["duration_ms"] > 0
        assert isinstance(ok["plan_cache_hit"], bool)
        assert "error" not in ok
        assert failed["error"] == "query_syntax"

    def test_traced_server_records_breakdown_and_wire_ms(self, traced_served,
                                                         tmp_path,
                                                         traced_remote):
        # Attach a fresh log to the live traced server for this test.
        path = tmp_path / "traced_queries.jsonl"
        _, _, server = traced_served
        writer = QueryLogWriter(str(path))
        server.query_log = writer
        try:
            cursor = traced_remote.session().execute(8, system="D")
            cursor.fetchall()
        finally:
            server.query_log = None
            writer.close()
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert records, "traced execute logged nothing"
        record = records[-1]
        assert record["scan_ms"] >= 0.0 and record["plan_ms"] >= 0.0
        assert record["wire_ms"] >= 0.0
        assert record["index_probes"] >= 1
        assert record["access_paths"]
        assert record["rows"] == cursor.rowcount

    def test_service_records_queries(self, tiny_text, tmp_path):
        path = tmp_path / "service_queries.jsonl"
        with repro.connect(tiny_text, systems=("D",), service=True,
                           query_log=str(path)) as db:
            rows = db.session().execute(1, stream=False).fetchall()
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert len(records) == 1
        record = records[0]
        assert record["source"] == "service" and record["system"] == "D"
        assert record["rows"] == len(rows)
        assert record["queue_ms"] >= 0.0 and record["duration_ms"] > 0


# -- the live ops surface -------------------------------------------------------------


class TestOpsSurface:
    def test_stats_carries_per_tenant_histograms(self, traced_served,
                                                 traced_remote):
        traced_remote.session().execute(1, system="D").fetchall()
        stats = traced_remote.stats()
        histograms = stats["metrics"]["histograms"]
        assert "server.request_ms" in histograms        # unlabeled: kept
        labeled = histograms['server.request_ms{tenant="default"}']
        assert labeled["count"] >= 1
        assert labeled["p50_ms"] >= 0.0
        counters = stats["metrics"]["counters"]
        assert counters['server.executes_total{tenant="default"}'] >= 1

    def test_top_renders_tenant_table(self, traced_served, traced_remote,
                                      capsys):
        from repro.cli import main
        handle, _, _ = traced_served
        traced_remote.session().execute(1, system="D").fetchall()
        assert main(["top", handle.url, "-n", "2",
                     "--interval", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "TENANT" in out and "P95MS" in out
        assert "default" in out

    def test_top_unreachable_server_fails_cleanly(self, capsys):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        from repro.cli import main
        assert main(["top", f"xmark://127.0.0.1:{port}/auction",
                     "-n", "1"]) == 1
        assert "top:" in capsys.readouterr().err
