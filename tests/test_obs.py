"""Observability: tracer, metrics registry, EXPLAIN/PROFILE agreement.

The profile tests verify span trees against *independently counted*
execution facts: index probes against untraced ``store.stats`` deltas,
shard fan-out against the scatter outcome's ``shards_used``, cache-hit
flags against the service's cache counters.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.benchmark.queries import query_text
from repro.benchmark.systems import get_profile
from repro.db import connect
from repro.errors import BenchmarkError
from repro.obs import (
    NULL_SPAN, NULL_TRACER, MetricsRegistry, TraceLogWriter, Tracer,
)
from repro.obs.trace import TRACE_SCHEMA_VERSION
from repro.service.metrics import ServiceMetrics
from repro.xquery.evaluator import evaluate
from repro.xquery.planner import compile_query

ALL_SYSTEMS = tuple("ABCDEFG")
PROFILED_QUERIES = (1, 5, 8)


@pytest.fixture(scope="module")
def traced_db(tiny_text):
    with connect(tiny_text, systems=ALL_SYSTEMS, tracing=True) as db:
        yield db


@pytest.fixture(scope="module")
def traced_sharded_db(tiny_text):
    with connect(tiny_text, systems=(), shards=2, tracing=True) as db:
        yield db


@pytest.fixture(scope="module")
def traced_service_db(tiny_text):
    with connect(tiny_text, systems=("D",), service=True, tracing=True) as db:
        yield db


# -- tracer ---------------------------------------------------------------------------


class TestTracer:
    def test_span_tree_nesting_and_attrs(self):
        tracer = Tracer()
        with tracer.span("root", kind="outer") as root:
            with tracer.span("child") as child:
                child.set(rows=3)
            with tracer.span("sibling"):
                pass
        assert root.finished
        assert [c.name for c in root.children] == ["child", "sibling"]
        assert root.attrs == {"kind": "outer"}
        assert root.children[0].attrs == {"rows": 3}
        assert root.find("sibling") is root.children[1]
        assert len(root.find_all("child")) == 1
        assert tracer.roots == (root,)

    def test_exception_sets_error_attr(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        (root,) = tracer.roots
        assert root.attrs["error"] == "ValueError"
        assert root.finished

    def test_cross_thread_begin_parents_under_caller(self):
        tracer = Tracer()
        root = tracer.begin("root")

        def worker():
            child = tracer.begin("worker", parent=root, rank=1)
            with tracer.activate(child):
                with tracer.span("inner"):
                    pass
            child.finish()

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        root.finish()
        assert [c.name for c in root.children] == ["worker"]
        assert [c.name for c in root.children[0].children] == ["inner"]

    def test_roots_retention_is_bounded(self):
        tracer = Tracer(keep=2)
        for number in range(5):
            with tracer.span("q", n=number):
                pass
        assert [r.attrs["n"] for r in tracer.roots] == [3, 4]

    def test_null_tracer_produces_zero_spans(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.span("anything", x=1) is NULL_SPAN
        assert NULL_TRACER.begin("anything") is NULL_SPAN
        assert NULL_TRACER.current() is None
        assert NULL_TRACER.roots == ()
        with NULL_TRACER.activate(NULL_SPAN):
            with NULL_TRACER.span("nested") as span:
                span.set(ignored=True)
        assert NULL_TRACER.roots == ()
        assert NULL_SPAN.attrs == {}
        assert NULL_SPAN.to_dict()["children"] == []

    def test_trace_log_writer_schema(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(on_root=TraceLogWriter(path))
        with tracer.span("outer", q=1):
            with tracer.span("inner"):
                pass
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["v"] == TRACE_SCHEMA_VERSION
        span = record["span"]
        assert set(span) == {"name", "start", "duration_ms", "attrs",
                             "children"}
        assert span["name"] == "outer"
        assert span["attrs"] == {"q": 1}
        assert span["children"][0]["name"] == "inner"


# -- metrics registry -----------------------------------------------------------------


class TestMetricsRegistry:
    def test_get_or_create_by_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", system="D")
        b = registry.counter("hits", system="D")
        c = registry.counter("hits", system="E")
        assert a is b and a is not c
        a.inc()
        a.inc(4)
        assert a.value == 5 and c.value == 0

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("latency")
        with pytest.raises(BenchmarkError):
            registry.histogram("latency")

    def test_histogram_ring_bounds_memory(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", window=4)
        for number in range(100):
            hist.observe(number / 1000.0)
        assert hist.retained == 4             # ring keeps the window only
        assert hist.count == 100              # lifetime total stays exact
        summary = hist.summary()
        assert summary.count == 100
        assert summary.maximum == pytest.approx(0.099)
        assert len(hist.samples()) == 4

    def test_exporters(self):
        registry = MetricsRegistry()
        registry.counter("queries", system="D").inc(3)
        registry.gauge("window").set(1.5)
        registry.histogram("lat").observe(0.002)
        snapshot = registry.snapshot()
        assert snapshot["counters"]['queries{system="D"}'] == 3
        assert snapshot["gauges"]["window"] == 1.5
        assert snapshot["histograms"]["lat"]["count"] == 1
        text = registry.render_text()
        assert 'queries{system="D"} 3' in text
        assert "lat count=1" in text

    def test_service_metrics_shim_is_bounded(self):
        metrics = ServiceMetrics(window=8)
        for number in range(50):
            metrics.record(started=0.0, finished=0.001,
                           compile_seconds=0.0001, queue_seconds=0.0,
                           plan_cache_hit=number % 2 == 0,
                           result_cache_hit=False, system="D")
        assert metrics.completed == 50
        assert metrics._latency.retained == 8
        snapshot = metrics.snapshot()
        assert snapshot["completed"] == 50
        assert snapshot["plan_cache_hits"] == 25
        assert snapshot["latency"]["count"] == 50
        text = metrics.registry.render_text()
        assert 'service.queries_total{system="D"} 50' in text


# -- EXPLAIN --------------------------------------------------------------------------


class TestExplain:
    def test_q1_reports_id_lookup(self, traced_db):
        explain = traced_db.session().explain(1, system="D")
        kinds = [a["kind"] for a in explain["plan"]["access_paths"]]
        assert "id_lookup" in kinds
        assert "EXPLAIN system=D mode=direct" in explain.render()

    def test_q5_reports_range_plan(self, traced_db):
        explain = traced_db.session().explain(5, system="D")
        ranges = explain["plan"]["ranges"]
        assert len(ranges) == 1
        assert ranges[0]["op"] == ">="
        assert ranges[0]["bound"] == 40.0

    def test_q8_reports_hash_join(self, traced_db):
        explain = traced_db.session().explain(8, system="D")
        joins = explain["plan"]["joins"]
        assert len(joins) == 1
        assert joins[0]["strategy"] == "hash"

    def test_q19_predicts_order_by_barrier(self, traced_db):
        explain = traced_db.session().explain(19, system="D")
        assert any("order-by" in b for b in explain["plan"]["barriers"])
        assert "streaming barrier: order-by" in explain.render()

    def test_sharded_explain_names_route(self, traced_sharded_db):
        explain = traced_sharded_db.session().explain(1, system="S")
        assert explain["mode"] == "scatter"
        assert explain["shard"]["kind"] == "routed"
        assert explain["shard"]["shards"] == 2
        broadcast = traced_sharded_db.session().explain(8, system="S")
        assert broadcast["shard"]["kind"] == "broadcast_join"

    def test_explain_does_not_execute(self, traced_db):
        tracer = traced_db.tracer
        before = len(tracer.roots)
        traced_db.session().explain(8, system="D")
        assert len(tracer.roots) == before


# -- PROFILE vs. independently counted execution facts --------------------------------


class TestProfileAgainstExecution:
    @pytest.mark.parametrize("query", PROFILED_QUERIES)
    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    def test_eager_and_streaming_probe_counts_agree(self, traced_db,
                                                    system, query):
        session = traced_db.session()
        eager = session.execute(query, system=system, stream=False)
        eager.fetchall()
        eval_span = eager.profile().find("evaluator.eval")
        assert eval_span is not None
        streamed = session.execute(query, system=system, stream=True)
        streamed.fetchall()
        stream_span = streamed.profile().find("evaluator.stream")
        assert stream_span is not None
        # Two different pipelines, one probe count.
        assert (eval_span.attrs["index_probes"]
                == stream_span.attrs["index_probes"])
        assert eager.profile().attrs["rows"] == streamed.rowcount

    @pytest.mark.parametrize("query", PROFILED_QUERIES)
    @pytest.mark.parametrize("system", ("C", "E"))
    def test_probe_count_matches_untraced_stats_delta(self, traced_db,
                                                      system, query):
        # On C and E every index lookup flows through the evaluator, so
        # the span's probe count must equal the store's own counter delta
        # measured around a completely untraced execution.
        store = traced_db.store(system)
        compiled = compile_query(query_text(query), store,
                                 get_profile(system))
        before = store.stats.index_lookups
        evaluate(compiled)
        delta = store.stats.index_lookups - before
        cursor = traced_db.session().execute(query, system=system,
                                             stream=False)
        cursor.fetchall()
        span = cursor.profile().find("evaluator.eval")
        assert span.attrs["index_probes"] == delta
        assert span.attrs["index_degrades"] == 0

    @pytest.mark.parametrize("query", PROFILED_QUERIES)
    @pytest.mark.parametrize("system", ("F", "G"))
    def test_scan_only_profiles_probe_nothing(self, traced_db, system,
                                              query):
        cursor = traced_db.session().execute(query, system=system,
                                             stream=False)
        cursor.fetchall()
        span = cursor.profile().find("evaluator.eval")
        assert span.attrs["index_probes"] == 0

    @pytest.mark.parametrize("query", PROFILED_QUERIES)
    def test_shard_span_fanout_matches_shards_used(self, traced_sharded_db,
                                                   query):
        cursor = traced_sharded_db.session().execute(query, system="S",
                                                     stream=False)
        cursor.fetchall()
        root = cursor.profile()
        assert root.name == "scatter.query"
        shard_spans = root.find_all("scatter.shard")
        distinct = {s.attrs["shard"] for s in shard_spans}
        assert len(distinct) == root.attrs["shards_used"]
        merge = root.find("scatter.merge")
        if merge is not None:
            assert merge.attrs["rows"] == root.attrs["rows"]

    def test_routed_query_touches_one_shard(self, traced_sharded_db):
        cursor = traced_sharded_db.session().execute(1, system="S",
                                                     stream=False)
        cursor.fetchall()
        root = cursor.profile()
        assert root.attrs["plan"] == "routed"
        assert root.attrs["shards_used"] == 1
        assert len({s.attrs["shard"]
                    for s in root.find_all("scatter.shard")}) == 1

    def test_broadcast_join_fans_out_to_all_shards(self, traced_sharded_db):
        cursor = traced_sharded_db.session().execute(8, system="S",
                                                     stream=False)
        cursor.fetchall()
        root = cursor.profile()
        assert root.attrs["plan"] == "broadcast_join"
        assert root.attrs["shards_used"] == 2

    def test_service_cache_hit_flag_matches_cache_stats(self,
                                                        traced_service_db):
        service = traced_service_db.service
        session = traced_service_db.session()
        first = session.execute(5, system="D", stream=False)
        first.fetchall()
        hits_before = service.result_cache.stats.hits
        second = session.execute(5, system="D", stream=False)
        second.fetchall()
        assert service.result_cache.stats.hits == hits_before + 1
        root = second.profile()
        assert root.name == "service.query"
        assert root.attrs["result_cache_hit"] is True
        assert root.find("service.result_cache").attrs["hit"] is True
        assert first.profile().attrs["result_cache_hit"] is False
        # admission + result-cache probe still spanned on the hit path
        assert first.profile().find("service.admission") is not None

    def test_service_span_rides_the_outcome(self, traced_service_db):
        cursor = traced_service_db.session().execute(2, system="D",
                                                     stream=False)
        rows = cursor.fetchall()
        root = cursor.profile()
        assert root.attrs["result_size"] == len(rows)
        assert root.find("service.plan_cache") is not None

    def test_profile_none_when_tracing_off(self, tiny_text):
        with connect(tiny_text, systems=("D",)) as db:
            cursor = db.session().execute(1, stream=False)
            cursor.fetchall()
            assert cursor.profile() is None
            assert db.tracer is NULL_TRACER
            assert db.tracer.roots == ()

    def test_streaming_profile_completes_on_exhaustion(self, traced_db):
        cursor = traced_db.session().execute(2, system="D", stream=True)
        assert not cursor.profile().finished   # still streaming
        cursor.fetchall()
        root = cursor.profile()
        assert root.finished
        assert root.attrs["rows"] == cursor.rowcount

    def test_streaming_profile_completes_on_close(self, traced_db):
        cursor = traced_db.session().execute(2, system="D", stream=True)
        cursor.fetchone()
        cursor.close()
        assert cursor.profile().finished

    def test_update_and_transaction_spans(self, tiny_text):
        with connect(tiny_text, systems=("D",), tracing=True) as db:
            session = db.session()
            with session.transaction() as txn:
                txn.place_bid("open_auction0", "person1", 4.0,
                              "05/24/2000", "11:00:00")
            root = db.tracer.roots[-1]
            assert root.name == "txn.commit"
            assert root.attrs["ops"] == 1
            op_span = root.find("update.op")
            assert op_span is not None
            assert op_span.attrs["maintenance"] == "incremental"
            assert op_span.attrs["footprint"] > 0

    def test_service_update_span_records_invalidation(self, tiny_text):
        with connect(tiny_text, systems=("D",), service=True,
                     tracing=True) as db:
            session = db.session()
            session.execute(1, system="D", stream=False).fetchall()
            with session.transaction() as txn:
                txn.place_bid("open_auction0", "person1", 4.0,
                              "05/24/2000", "11:00:00")
            roots = [r for r in db.tracer.roots
                     if r.name == "service.transaction"]
            assert roots
            invalidate = roots[-1].find("service.invalidate")
            assert invalidate.attrs["system"] == "D"
            kept = invalidate.attrs["results_kept"]
            dropped = invalidate.attrs["results_dropped"]
            assert kept + dropped >= 1       # the Q1 result was cached

    def test_connection_trace_log(self, tiny_text, tmp_path):
        path = tmp_path / "workload.jsonl"
        with connect(tiny_text, systems=("D",), tracing=True,
                     trace_log=str(path)) as db:
            cursor = db.session().execute(1, stream=False)
            cursor.fetchall()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["v"] == TRACE_SCHEMA_VERSION
        assert record["span"]["name"] == "query"
        names = {c["name"] for c in record["span"]["children"]}
        assert {"plan", "evaluator.eval"} <= names

    def test_tenant_label_reaches_registry(self, tiny_text):
        with connect(tiny_text, systems=("D",)) as db:
            db.session(tenant="alice").execute(1, stream=False).fetchall()
            db.session(tenant="alice").execute(2, stream=False).fetchall()
            db.session(tenant="bob").execute(1, stream=False).fetchall()
            text = db.registry.render_text()
            assert 'db.queries_total{system="D",tenant="alice"} 2' in text
            assert 'db.queries_total{system="D",tenant="bob"} 1' in text


# -- CLI ------------------------------------------------------------------------------


class TestObsCli:
    def test_trace_command(self, capsys):
        from repro.cli import main
        assert main(["trace", "-f", "0.0005", "-q", "1", "-s", "D"]) == 0
        out = capsys.readouterr().out
        assert "EXPLAIN system=D mode=direct" in out
        assert "PROFILE" in out
        assert "evaluator.eval" in out

    def test_trace_command_sharded_json(self, tmp_path, capsys):
        from repro.cli import main
        report = tmp_path / "trace.json"
        assert main(["trace", "-f", "0.0005", "-q", "8", "--shards", "2",
                     "--json", str(report)]) == 0
        out = capsys.readouterr().out
        assert "EXPLAIN system=S mode=scatter" in out
        assert "scatter.query" in out
        payload = json.loads(report.read_text())
        assert payload["explain"]["shard"]["kind"] == "broadcast_join"
        assert payload["profile"]["name"] == "scatter.query"

    def test_stats_command(self, tmp_path, capsys):
        from repro.cli import main
        report = tmp_path / "stats.json"
        assert main(["stats", "-f", "0.0005", "-c", "2", "-n", "4",
                     "--json", str(report)]) == 0
        out = capsys.readouterr().out
        assert "service.queries_total" in out
        assert "service.latency_seconds" in out
        snapshot = json.loads(report.read_text())
        assert snapshot["counters"]["service.queries_total"] == 8
