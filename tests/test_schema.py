"""Tests for content models, DTD declarations and the validator."""

import pytest

from repro.errors import ValidationError
from repro.schema.auction import REFERENCE_TARGETS, auction_dtd, auction_split_dtd
from repro.schema.dtd import AttributeKind, Dtd, cdata, id_attr, idref
from repro.schema.model import (
    Choice, Empty, Mixed, Name, Repeat, Sequence, choice, optional,
    parse_content_model, plus, seq, star,
)
from repro.schema.validator import validate
from repro.xmlio.parser import parse


class TestContentModels:
    @pytest.mark.parametrize("model,accept,reject", [
        (seq("a", "b"), [["a", "b"]], [["a"], ["b", "a"], ["a", "b", "b"], []]),
        (choice("a", "b"), [["a"], ["b"]], [[], ["a", "b"]]),
        (star("a"), [[], ["a"], ["a"] * 5], [["b"], ["a", "b"]]),
        (plus("a"), [["a"], ["a", "a"]], [[]]),
        (optional("a"), [[], ["a"]], [["a", "a"]]),
        (seq("a", optional("b"), "c"), [["a", "c"], ["a", "b", "c"]], [["a", "b"], ["b", "c"]]),
        (seq(star(choice("a", "b")), "c"), [["c"], ["a", "b", "a", "c"]], [["a", "b"]]),
        (Empty(), [[]], [["a"]]),
    ])
    def test_matching(self, model, accept, reject):
        for sequence in accept:
            assert model.matches(sequence), f"{model} should accept {sequence}"
        for sequence in reject:
            assert not model.matches(sequence), f"{model} should reject {sequence}"

    def test_mixed_accepts_any_order_of_listed(self):
        model = Mixed(frozenset(("b", "i")))
        assert model.matches(["b", "i", "b"])
        assert not model.matches(["u"])
        assert model.allows_text()

    def test_allowed_tags(self):
        model = seq("a", star(choice("b", "c")))
        assert model.allowed_tags() == {"a", "b", "c"}

    def test_str_rendering(self):
        assert str(seq("a", optional("b"))) == "(a, b?)"
        assert str(Empty()) == "EMPTY"


class TestContentModelParsing:
    @pytest.mark.parametrize("text", [
        "(a, b, c)", "(a | b)", "(a*)", "(a+, b?)", "EMPTY",
        "(#PCDATA)", "(#PCDATA | b | i)*", "((a | b)+, c)",
    ])
    def test_parse_roundtrip_semantics(self, text):
        model = parse_content_model(text)
        reparsed = parse_content_model(str(model)) if text != "EMPTY" else model
        probes = [[], ["a"], ["b"], ["a", "b"], ["a", "b", "c"], ["c"]]
        for probe in probes:
            assert model.matches(probe) == reparsed.matches(probe)

    def test_parse_sequence(self):
        model = parse_content_model("(a, b?)")
        assert isinstance(model, Sequence)
        assert model.matches(["a"]) and model.matches(["a", "b"])

    def test_parse_mixed(self):
        model = parse_content_model("(#PCDATA | bold | emph)*")
        assert isinstance(model, Mixed)
        assert model.tags == {"bold", "emph"}

    @pytest.mark.parametrize("bad", ["", "(a", "(a,)", "ANY", "(#PCDATA | b)", "(a,b) junk"])
    def test_parse_errors(self, bad):
        with pytest.raises(ValidationError):
            parse_content_model(bad)


class TestDtd:
    def test_declare_and_lookup(self):
        dtd = Dtd(root="r")
        dtd.declare("r", "(x*)")
        dtd.declare("x", "EMPTY", (id_attr(), cdata("note")))
        assert "r" in dtd
        assert dtd.element("x").attribute("id").kind is AttributeKind.ID
        with pytest.raises(ValidationError):
            dtd.element("zzz")

    def test_id_and_idref_maps(self):
        dtd = auction_dtd()
        ids = dtd.id_attributes()
        assert ids["person"] == "id"
        assert ids["item"] == "id"
        refs = dtd.idref_attributes()
        assert refs["edge"] == ["from", "to"]
        assert refs["seller"] == ["person"]

    def test_serialize_contains_declarations(self):
        text = auction_dtd().serialize()
        assert "<!ELEMENT site (regions, categories, catgraph, people, open_auctions, closed_auctions)>" in text
        assert "<!ATTLIST person id ID #REQUIRED>" in text
        assert "(#PCDATA | bold | emph | keyword)*" in text  # tags sorted
        assert "<!ELEMENT categories (category+)>" in text

    def test_split_dtd_relaxes_ids(self):
        split = auction_split_dtd()
        person_id = split.element("person").attribute("id")
        assert person_id.kind is AttributeKind.CDATA
        assert person_id.required
        seller = split.element("seller").attribute("person")
        assert seller.kind is AttributeKind.CDATA

    def test_auction_dtd_reference_targets_are_declared(self):
        dtd = auction_dtd()
        for (element, attribute), target in REFERENCE_TARGETS.items():
            assert dtd.element(element).attribute(attribute) is not None
            assert target in dtd


class TestValidator:
    def _dtd(self) -> Dtd:
        dtd = Dtd(root="r")
        dtd.declare("r", "(x+, y?)")
        dtd.declare("x", "(#PCDATA)", (id_attr(),))
        dtd.declare("y", "EMPTY", (idref("to"),))
        return dtd

    def test_valid_document(self):
        doc = parse('<r><x id="a">t</x><y to="a"/></r>')
        assert validate(doc, self._dtd()).ok

    def test_wrong_root(self):
        report = validate(parse("<x/>"), self._dtd())
        assert any("root element" in v for v in report.violations)

    def test_undeclared_element(self):
        report = validate(parse('<r><x id="a"/><z/></r>'), self._dtd())
        assert any("match" in v or "undeclared" in v for v in report.violations)

    def test_content_model_violation(self):
        report = validate(parse('<r><y to="a"/></r>'), self._dtd())
        assert any("do not match" in v for v in report.violations)

    def test_missing_required_attribute(self):
        report = validate(parse("<r><x>t</x></r>"), self._dtd())
        assert any("missing required attribute" in v for v in report.violations)

    def test_duplicate_id(self):
        report = validate(parse('<r><x id="a"/><x id="a"/></r>'), self._dtd())
        assert any("duplicate ID" in v for v in report.violations)

    def test_dangling_idref(self):
        report = validate(parse('<r><x id="a"/><y to="zzz"/></r>'), self._dtd())
        assert any("points at no ID" in v for v in report.violations)

    def test_typed_reference_target(self):
        dtd = self._dtd()
        doc = parse('<r><x id="a"/><y to="a"/></r>')
        report = validate(doc, dtd, reference_targets={("y", "to"): "other"})
        assert any("expected <other>" in v for v in report.violations)

    def test_stray_text_in_element_only(self):
        report = validate(parse('<r>oops<x id="a"/></r>'), self._dtd())
        assert any("character data" in v for v in report.violations)

    def test_undeclared_attribute(self):
        report = validate(parse('<r><x id="a" hacked="1"/></r>'), self._dtd())
        assert any("undeclared attribute" in v for v in report.violations)

    def test_raise_if_failed(self):
        report = validate(parse("<x/>"), self._dtd())
        with pytest.raises(ValidationError):
            report.raise_if_failed()

    def test_benchmark_document_is_valid(self, small_document):
        report = validate(small_document, auction_dtd(), REFERENCE_TARGETS)
        assert report.ok, report.violations[:5]
        assert report.refs_checked > 100
