"""Tests for the deterministic RNG substrate."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.rng.distributions import Distribution, RandomSource
from repro.rng.lcg import Lcg48
from repro.rng.streams import StreamFamily, derive_seed


class TestLcg48:
    def test_deterministic_for_seed(self):
        a = Lcg48(42)
        b = Lcg48(42)
        assert [a.next_raw() for _ in range(100)] == [b.next_raw() for _ in range(100)]

    def test_different_seeds_differ(self):
        a = Lcg48(1)
        b = Lcg48(2)
        assert [a.next_raw() for _ in range(10)] != [b.next_raw() for _ in range(10)]

    def test_adjacent_seeds_not_correlated_in_doubles(self):
        # The seed scrambling must prevent lock-step sequences for seeds 1,2.
        a = Lcg48(1)
        b = Lcg48(2)
        diffs = [abs(a.next_double() - b.next_double()) for _ in range(50)]
        assert max(diffs) > 0.1

    def test_next_double_range(self):
        gen = Lcg48(7)
        for _ in range(1000):
            value = gen.next_double()
            assert 0.0 <= value < 1.0

    def test_next_uint_bounds(self):
        gen = Lcg48(7)
        for bound in (1, 2, 3, 10, 1000):
            for _ in range(200):
                assert 0 <= gen.next_uint(bound) < bound

    def test_next_uint_rejects_nonpositive(self):
        gen = Lcg48(7)
        with pytest.raises(ValueError):
            gen.next_uint(0)
        with pytest.raises(ValueError):
            gen.next_uint(-5)

    def test_next_uint_unbiased_small_bound(self):
        gen = Lcg48(3)
        counts = [0, 0, 0]
        for _ in range(30_000):
            counts[gen.next_uint(3)] += 1
        for count in counts:
            assert abs(count - 10_000) < 500

    def test_state_save_restore(self):
        gen = Lcg48(5)
        gen.next_raw()
        state = gen.getstate()
        first = [gen.next_raw() for _ in range(5)]
        gen.setstate(state)
        assert [gen.next_raw() for _ in range(5)] == first

    def test_clone_replays(self):
        gen = Lcg48(5)
        gen.next_raw()
        twin = gen.clone()
        assert [gen.next_raw() for _ in range(20)] == [twin.next_raw() for _ in range(20)]

    def test_seed_property(self):
        assert Lcg48(1234).seed == 1234

    @given(st.integers(min_value=0, max_value=2**48 - 1), st.integers(min_value=1, max_value=10**9))
    @settings(max_examples=50)
    def test_uint_always_in_bounds(self, seed, bound):
        assert 0 <= Lcg48(seed).next_uint(bound) < bound


class TestRandomSource:
    def test_uniform_range(self):
        src = RandomSource.from_seed(1)
        for _ in range(500):
            assert 2.0 <= src.uniform(2.0, 5.0) < 5.0

    def test_uniform_rejects_inverted(self):
        with pytest.raises(ValueError):
            RandomSource.from_seed(1).uniform(5.0, 2.0)

    def test_uniform_int_inclusive(self):
        src = RandomSource.from_seed(1)
        seen = {src.uniform_int(1, 3) for _ in range(500)}
        assert seen == {1, 2, 3}

    def test_boolean_probability(self):
        src = RandomSource.from_seed(1)
        hits = sum(src.boolean(0.25) for _ in range(20_000))
        assert abs(hits / 20_000 - 0.25) < 0.02

    def test_boolean_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            RandomSource.from_seed(1).boolean(1.5)

    def test_exponential_mean(self):
        src = RandomSource.from_seed(2)
        samples = [src.exponential(10.0) for _ in range(20_000)]
        assert abs(sum(samples) / len(samples) - 10.0) < 0.5
        assert all(s >= 0 for s in samples)

    def test_exponential_rejects_bad_mean(self):
        with pytest.raises(ValueError):
            RandomSource.from_seed(1).exponential(0)

    def test_normal_moments(self):
        src = RandomSource.from_seed(3)
        samples = [src.normal(50.0, 5.0) for _ in range(20_000)]
        mean = sum(samples) / len(samples)
        var = sum((s - mean) ** 2 for s in samples) / len(samples)
        assert abs(mean - 50.0) < 0.25
        assert abs(math.sqrt(var) - 5.0) < 0.25

    def test_normal_rejects_negative_stddev(self):
        with pytest.raises(ValueError):
            RandomSource.from_seed(1).normal(0, -1)

    def test_choice_covers_all(self):
        src = RandomSource.from_seed(4)
        items = ("a", "b", "c")
        assert {src.choice(items) for _ in range(200)} == set(items)

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            RandomSource.from_seed(1).choice([])

    def test_sample_without_replacement_distinct(self):
        src = RandomSource.from_seed(5)
        for _ in range(100):
            sample = src.sample_without_replacement(50, 10)
            assert len(sample) == len(set(sample)) == 10
            assert all(0 <= x < 50 for x in sample)

    def test_sample_too_many_raises(self):
        with pytest.raises(ValueError):
            RandomSource.from_seed(1).sample_without_replacement(3, 4)

    def test_shuffle_is_permutation(self):
        src = RandomSource.from_seed(6)
        items = list(range(30))
        shuffled = list(items)
        src.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # astronomically unlikely to be identity

    def test_clone_replays_with_normal_spare(self):
        src = RandomSource.from_seed(7)
        src.normal()  # leaves a cached spare value
        twin = src.clone()
        assert [src.normal() for _ in range(9)] == [twin.normal() for _ in range(9)]


class TestDistribution:
    def test_zipf_is_monotonic(self):
        dist = Distribution.zipf(100)
        probabilities = [dist.probability(i) for i in range(100)]
        assert all(a >= b - 1e-12 for a, b in zip(probabilities, probabilities[1:]))

    def test_zipf_rank0_most_frequent(self):
        dist = Distribution.zipf(1000)
        src = RandomSource.from_seed(8)
        counts = {}
        for _ in range(10_000):
            index = dist.sample(src)
            counts[index] = counts.get(index, 0) + 1
        assert max(counts, key=counts.get) == 0

    def test_sample_in_range(self):
        dist = Distribution([1, 1, 1])
        src = RandomSource.from_seed(9)
        assert {dist.sample(src) for _ in range(200)} == {0, 1, 2}

    def test_rejects_empty_and_negative(self):
        with pytest.raises(ValueError):
            Distribution([])
        with pytest.raises(ValueError):
            Distribution([1, -1])
        with pytest.raises(ValueError):
            Distribution([0, 0])
        with pytest.raises(ValueError):
            Distribution.zipf(0)

    def test_probabilities_sum_to_one(self):
        dist = Distribution([3, 1, 6])
        total = sum(dist.probability(i) for i in range(3))
        assert abs(total - 1.0) < 1e-9


class TestStreams:
    def test_same_name_same_stream(self):
        family = StreamFamily(11)
        a = family.stream("items")
        b = family.stream("items")
        assert [a.uniform_int(0, 10**6) for _ in range(50)] == [
            b.uniform_int(0, 10**6) for _ in range(50)
        ]

    def test_different_names_different_streams(self):
        family = StreamFamily(11)
        a = family.stream("items")
        b = family.stream("persons")
        assert [a.uniform_int(0, 10**6) for _ in range(10)] != [
            b.uniform_int(0, 10**6) for _ in range(10)
        ]

    def test_substream_indexing(self):
        family = StreamFamily(11)
        assert family.substream("person", 5).core.seed == family.stream("person#5").core.seed
        assert family.substream("person", 5).core.seed != family.substream("person", 6).core.seed

    def test_two_families_interchangeable(self):
        a = StreamFamily(99).stream("x")
        b = StreamFamily(99).stream("x")
        assert [a.core.next_raw() for _ in range(10)] == [b.core.next_raw() for _ in range(10)]

    def test_derive_seed_stable_and_48bit(self):
        seed = derive_seed(123, "hello")
        assert seed == derive_seed(123, "hello")
        assert 0 <= seed < 2**48
        assert derive_seed(123, "hello") != derive_seed(124, "hello")
        assert derive_seed(123, "hello") != derive_seed(123, "world")
