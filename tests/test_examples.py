"""End-to-end smoke of every examples/ script at tiny scale.

Each example is the documentation's executable form of the
``repro.connect()`` API; a broken example is a broken doc.  Every script
accepts an optional scale argument precisely so this test can run them
fast (a few hundred kB of generated document each).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted(p.name for p in (REPO_ROOT / "examples").glob("*.py"))
SMOKE_SCALE = "0.0008"


def test_every_example_is_covered():
    """A new example must be added to the smoke run (glob keeps us honest)."""
    assert EXAMPLES == sorted((
        "auction_analytics.py", "compare_systems.py", "generate_dataset.py",
        "quickstart.py", "serve_demo.py", "validate_document.py",
    ))


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_end_to_end(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    completed = subprocess.run(
        [sys.executable, str(REPO_ROOT / "examples" / script), SMOKE_SCALE],
        capture_output=True, text=True, timeout=300, env=env,
    )
    assert completed.returncode == 0, (
        f"{script} failed:\n{completed.stdout[-2000:]}\n"
        f"{completed.stderr[-2000:]}")
    assert completed.stdout.strip(), f"{script} printed nothing"
    # the doc examples must never print a detected inconsistency
    lowered = completed.stdout.lower()
    assert "bug!" not in lowered
    assert "mismatch" not in lowered
