"""Tests for the from-scratch XML parser, with stdlib ElementTree as oracle."""

import xml.etree.ElementTree as ET

import pytest

from repro.errors import XMLSyntaxError
from repro.xmlio.escape import escape_attribute, escape_text, resolve_references
from repro.xmlio.events import Characters, EndElement, StartElement
from repro.xmlio.parser import iterparse, parse, scan
from repro.xmlio.serialize import serialize


class TestEscaping:
    def test_escape_text(self):
        assert escape_text("a<b & c>d") == "a&lt;b &amp; c&gt;d"

    def test_escape_attribute_quotes(self):
        assert escape_attribute('say "hi"') == "say &quot;hi&quot;"

    def test_resolve_predefined(self):
        assert resolve_references("&lt;&gt;&amp;&quot;&apos;") == "<>&\"'"

    def test_resolve_charrefs(self):
        assert resolve_references("&#65;&#x42;") == "AB"

    def test_unknown_entity_raises(self):
        with pytest.raises(XMLSyntaxError):
            resolve_references("&nbsp;")

    def test_unterminated_entity_raises(self):
        with pytest.raises(XMLSyntaxError):
            resolve_references("&amp")

    def test_no_amp_fast_path(self):
        assert resolve_references("plain") == "plain"


class TestIterparse:
    def test_simple_events(self):
        events = list(iterparse('<a x="1"><b>hi</b></a>'))
        assert events == [
            StartElement("a", (("x", "1"),)),
            StartElement("b", ()),
            Characters("hi"),
            EndElement("b"),
            EndElement("a"),
        ]

    def test_self_closing(self):
        events = list(iterparse("<a><b/></a>"))
        assert events[1] == StartElement("b", ())
        assert events[2] == EndElement("b")

    def test_attributes_both_quote_styles(self):
        events = list(iterparse("<a x='1' y=\"2\"/>"))
        assert events[0].get("x") == "1"
        assert events[0].get("y") == "2"

    def test_entities_in_text_and_attrs(self):
        events = list(iterparse('<a x="&lt;v&gt;">&amp;&#33;</a>'))
        assert events[0].get("x") == "<v>"
        assert events[1] == Characters("&!")

    def test_comments_skipped(self):
        events = list(iterparse("<a><!-- note --><b/></a>"))
        assert len(events) == 4

    def test_cdata(self):
        events = list(iterparse("<a><![CDATA[<raw> & stuff]]></a>"))
        assert events[1] == Characters("<raw> & stuff")

    def test_prolog_and_doctype_skipped(self):
        text = '<?xml version="1.0"?>\n<!DOCTYPE site SYSTEM "x.dtd" [<!ELEMENT a EMPTY>]>\n<a/>'
        assert len(list(iterparse(text))) == 2

    def test_processing_instruction_skipped(self):
        assert len(list(iterparse("<a><?target data?></a>"))) == 2

    def test_whitespace_around_root_ok(self):
        assert len(list(iterparse("  <a/>  \n"))) == 2

    @pytest.mark.parametrize("bad,fragment", [
        ("<a><b></a>", "mismatched"),
        ("<a>", "unclosed"),
        ("<a/><b/>", "multiple root"),
        ("text<a/>", "character data outside"),
        ("<a x='1' x='2'/>", "duplicate attribute"),
        ("<a x=1/>", "quoted"),
        ("<a x></a>", "missing '='"),
        ("<a><!-- oops </a>", "unterminated comment"),
        ("<a><![CDATA[x</a>", "unterminated CDATA"),
        ("", "no root"),
        ("   ", "no root"),
        ("<a>&bogus;</a>", "unknown entity"),
        ("</a>", "no open element"),
        ("<a x=\"<\"/>", "'<' in attribute"),
        ("<!ELEMENT a EMPTY><a/>", "unsupported markup"),
    ])
    def test_malformed_inputs_raise(self, bad, fragment):
        with pytest.raises(XMLSyntaxError) as excinfo:
            list(iterparse(bad))
        assert fragment in str(excinfo.value)

    def test_error_carries_location(self):
        with pytest.raises(XMLSyntaxError) as excinfo:
            list(iterparse("<a>\n  <b></c>\n</a>"))
        assert excinfo.value.line == 2


class TestParse:
    def test_tree_structure(self):
        doc = parse('<a x="1"><b>one</b>two<b>three</b></a>')
        root = doc.root
        assert root.tag == "a"
        assert root.get("x") == "1"
        assert [c.tag for c in root.child_elements()] == ["b", "b"]
        assert root.text_content() == "onetwothree"

    def test_text_merging_across_cdata(self):
        doc = parse("<a>one<![CDATA[two]]>three</a>")
        assert doc.root.immediate_text() == "onetwothree"

    def test_parse_matches_stdlib_oracle(self, tiny_text):
        ours = parse(tiny_text)
        theirs = ET.fromstring(tiny_text)
        assert ours.root.tag == theirs.tag
        assert len(list(ours.root.child_elements())) == len(list(theirs))
        # Spot-check a deep subtree: people/person[0]
        our_person = ours.root.find("people").find("person")
        their_person = theirs.find("people").find("person")
        assert our_person.get("id") == their_person.get("id")
        assert our_person.find("name").immediate_text() == their_person.find("name").text

    def test_roundtrip_via_serialize(self, tiny_text):
        doc = parse(tiny_text)
        again = parse(serialize(doc))
        assert serialize(again) == serialize(doc)


class TestScan:
    def test_event_count_matches_iterparse(self):
        text = "<a><b>x</b><c/></a>"
        assert scan(text) == len(list(iterparse(text)))

    def test_scan_benchmark_document(self, tiny_text):
        assert scan(tiny_text) > 1000
