"""Regression tests for the races ``xmark lint`` surfaced.

Each test pins one fix from the shared-state pass's findings:

* ``QueryService.close`` — the closed latch now flips under the update
  lock, so concurrent closers agree on one winner and the query log is
  closed exactly once;
* ``QueryService.run_workload`` — the metrics snapshot swap happens
  under the update lock;
* ``WireClient.request`` — a truncated reply marks the session closed
  *inside* the request lock, so a racing request can never slip a send
  onto the dead socket between the None reply and the flag flip.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import BenchmarkError, ClosedSessionError, ProtocolError
from repro.server import client as client_mod
from repro.server.client import WireClient
from repro.service import QueryService


class TestQueryServiceCloseRace:
    def test_concurrent_close_single_winner(self, small_text):
        svc = QueryService(small_text, ("D",), max_workers=2)
        closes: list[int] = []
        real_shutdown = svc._pool.shutdown

        def counting_shutdown(*args, **kwargs):
            closes.append(1)
            return real_shutdown(*args, **kwargs)

        svc._pool.shutdown = counting_shutdown
        barrier = threading.Barrier(4)

        def racer():
            barrier.wait()
            svc.close()

        threads = [threading.Thread(target=racer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert closes == [1]          # exactly one closer won the latch
        with pytest.raises(BenchmarkError, match="closed"):
            svc.submit("D", 1)

    def test_close_remains_idempotent_sequentially(self, small_text):
        svc = QueryService(small_text, ("D",), max_workers=1)
        svc.close()
        svc.close()                   # second call is a quiet no-op


class TestWireClientTruncatedReply:
    @staticmethod
    def make_client(monkeypatch) -> WireClient:
        """A WireClient wired to a dead socket, bypassing the handshake."""
        client = WireClient.__new__(WireClient)
        client._lock = threading.Lock()
        client._closed = False
        client._max_frame = 1 << 20

        class DeadSocket:
            def sendall(self, data):
                return None

            def close(self):
                return None

        client._sock = DeadSocket()
        monkeypatch.setattr(client_mod.protocol, "recv_frame",
                            lambda sock, max_frame: None)
        return client

    def test_truncated_reply_raises_and_latches(self, monkeypatch):
        client = self.make_client(monkeypatch)
        with pytest.raises(ProtocolError, match="closed the connection"):
            client.request({"kind": "ping"})
        assert client._closed is True

    def test_latched_session_rejects_followups_typed(self, monkeypatch):
        client = self.make_client(monkeypatch)
        with pytest.raises(ProtocolError):
            client.request({"kind": "ping"})
        with pytest.raises(ClosedSessionError):
            client.request({"kind": "ping"})


class TestWorkloadMetricsSwap:
    def test_reset_metrics_still_resets(self, small_text):
        from repro.service import WorkloadGenerator, WorkloadSpec
        spec = WorkloadSpec(clients=2, requests_per_client=2,
                            systems=("D",), think_mean_seconds=0.0)
        with QueryService(small_text, ("D",), max_workers=2) as svc:
            first = svc.run_workload(WorkloadGenerator(spec))
            second = svc.run_workload(WorkloadGenerator(spec))
        assert first["completed"] == spec.total_requests
        # a fresh snapshot per run: counts do not accumulate across runs
        assert second["completed"] == spec.total_requests
