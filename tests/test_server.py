"""The wire server: protocol, framing damage, quotas, backpressure, e2e.

The damage tests follow tests/faultinject.py's philosophy: hit the frame
codec at every structurally interesting offset — truncated header,
truncated payload, lying length fields, junk inside a well-framed
payload — and assert the server answers with a *typed* protocol error
(or hangs up cleanly when no reply is possible) while other connections
and the served state survive untouched.
"""

from __future__ import annotations

import json
import socket
import struct
import threading

import pytest

import repro
from repro.errors import (
    ClosedCursorError, ProtocolError, QuerySyntaxError, ServerBusyError,
    TenantQuotaError, TransactionError, UnknownSystemError,
)
from repro.server import (
    PROTOCOL_VERSION, RemotePrepared, TenantQuota, TenantRegistry,
    XMarkServer, connect_url, parse_url, serve_in_thread,
)
from repro.server import protocol
from repro.update.ops import CloseAuction, DeleteItem, PlaceBid, RegisterPerson
from repro.xmlio.parser import parse
from repro.xmlio.serialize import serialize


@pytest.fixture(scope="module")
def served(tiny_text):
    """A wire server over a direct D connection, plus the database."""
    database = repro.connect(tiny_text, systems=("D",))
    server = XMarkServer(queue_depth=64)
    server.add_document("auction", database, owned=True)
    handle = serve_in_thread(server)
    yield handle, database, server
    handle.stop()


@pytest.fixture()
def remote(served):
    handle, _database, _server = served
    database = connect_url(handle.url)
    yield database
    database.close()


def raw_connection(handle) -> socket.socket:
    sock = socket.create_connection((handle.host, handle.port), timeout=10.0)
    sock.settimeout(10.0)
    return sock


def raw_send(sock: socket.socket, payload: dict) -> None:
    body = json.dumps(payload).encode("utf-8")
    sock.sendall(struct.pack(">I", len(body)) + body)


def raw_recv(sock: socket.socket) -> dict | None:
    header = b""
    while len(header) < 4:
        chunk = sock.recv(4 - len(header))
        if not chunk:
            return None
        header += chunk
    (length,) = struct.unpack(">I", header)
    body = b""
    while len(body) < length:
        chunk = sock.recv(length - len(body))
        if not chunk:
            return None
        body += chunk
    return json.loads(body)


def raw_hello(sock: socket.socket, document: str = "auction",
              tenant: str | None = None) -> dict:
    raw_send(sock, {"kind": "hello", "protocol": PROTOCOL_VERSION,
                    "document": document, "tenant": tenant})
    reply = raw_recv(sock)
    assert reply is not None and reply["kind"] == "welcome"
    return reply


# -- protocol units -------------------------------------------------------------------


class TestProtocolUnits:
    def test_frame_roundtrip(self):
        frame = protocol.encode_frame({"kind": "ping", "id": 7})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert protocol.decode_payload(frame[4:]) == {"kind": "ping", "id": 7}

    def test_decode_rejects_junk(self):
        with pytest.raises(ProtocolError) as err:
            protocol.decode_payload(b"\xff\x00 not json")
        assert err.value.code == "bad_frame"
        with pytest.raises(ProtocolError) as err:
            protocol.decode_payload(b'["a", "list"]')
        assert err.value.code == "bad_message"
        with pytest.raises(ProtocolError) as err:
            protocol.decode_payload(b'{"no": "kind"}')
        assert err.value.code == "bad_message"

    def test_bind_params(self):
        text = "for $i in /site return $min + $i/x"
        bound = protocol.bind_params(text, {"min": 5})
        assert bound == "for $i in /site return 5 + $i/x"
        bound = protocol.bind_params("$name", {"name": "abc"})
        assert bound == '"abc"'
        # $names must not be clobbered by a $name substitution
        assert protocol.bind_params("$a + $ab", {"a": 1}) == "1 + $ab"

    def test_bind_params_rejects_bad_values(self):
        for params in ({"bad name": 1}, {"a": True}, {"a": None},
                       {"a": [1]}, {"a": 'say "hi"'}):
            with pytest.raises(ProtocolError) as err:
                protocol.bind_params("$a $bad $name", params)
            assert err.value.code == "bad_params"
        with pytest.raises(ProtocolError) as err:
            protocol.bind_params("no placeholder", {"a": 1})
        assert err.value.code == "bad_params"

    def test_op_roundtrip(self):
        person = parse('<person id="p9"><name>N</name></person>').root
        ops = [RegisterPerson(person),
               PlaceBid("open_auction0", "person0", 3.5, "01/01/26", "00:00"),
               CloseAuction("open_auction1", "02/02/26"),
               DeleteItem("item0")]
        for op in ops:
            decoded = protocol.decode_op(protocol.encode_op(op))
            assert decoded.token() == op.token()
        rp = protocol.decode_op(protocol.encode_op(ops[0]))
        assert serialize(rp.person) == serialize(person)

    def test_decode_op_rejects_junk(self):
        for bad in (None, [], {"kind": "nope"}, {"kind": "place_bid"}):
            with pytest.raises(ProtocolError):
                protocol.decode_op(bad)

    def test_error_code_mapping(self):
        assert protocol.error_code(ServerBusyError("x")) == "server_busy"
        assert protocol.error_code(TenantQuotaError("x")) == "tenant_quota"
        assert protocol.error_code(QuerySyntaxError("x")) == "query_syntax"
        assert protocol.error_code(
            ProtocolError("x", code="truncated")) == "truncated"
        assert protocol.error_code(ValueError("x")) == "internal"

    def test_error_payload_detail_roundtrip(self):
        exc = UnknownSystemError("Z", ("D", "S"))
        reply = protocol.error_payload(4, exc)
        assert reply["code"] == "unknown_system"
        with pytest.raises(UnknownSystemError) as err:
            protocol.raise_wire_error(reply)
        assert err.value.system == "Z"
        assert err.value.available == ("D", "S")
        reply = protocol.error_payload(None, TransactionError("t", applied=2))
        with pytest.raises(TransactionError) as err:
            protocol.raise_wire_error(reply)
        assert err.value.applied == 2

    def test_parse_url(self):
        assert parse_url("xmark://h:17/doc") == ("h", 17, "doc")
        assert parse_url("xmark://h:17/") == ("h", 17, "")
        for bad in ("http://h:1/d", "xmark://nohost/d", "xmark://h:xx/d"):
            with pytest.raises(ProtocolError):
                parse_url(bad)


class TestTenantRegistry:
    def test_inflight_quota(self):
        registry = TenantRegistry(default_quota=TenantQuota(max_inflight=2))
        tenant = registry.connect("t")
        registry.begin_request(tenant)
        registry.begin_request(tenant)
        with pytest.raises(TenantQuotaError):
            registry.begin_request(tenant)
        assert tenant.refused_total == 1
        registry.end_request(tenant)
        registry.begin_request(tenant)     # slot freed

    def test_disabled_limit(self):
        registry = TenantRegistry(default_quota=TenantQuota(max_sessions=0))
        for _ in range(100):
            registry.connect("t")
        assert registry.state("t").sessions == 100

    def test_per_tenant_override(self):
        registry = TenantRegistry(
            default_quota=TenantQuota(max_sessions=1),
            quotas={"vip": TenantQuota(max_sessions=3)})
        registry.connect("vip")
        registry.connect("vip")
        registry.connect("plain")
        with pytest.raises(TenantQuotaError):
            registry.connect("plain")


# -- handshake ------------------------------------------------------------------------


class TestHandshake:
    def test_protocol_mismatch(self, served):
        handle, _, _ = served
        sock = raw_connection(handle)
        raw_send(sock, {"kind": "hello", "protocol": 99,
                        "document": "auction"})
        reply = raw_recv(sock)
        assert reply["kind"] == "error"
        assert reply["code"] == "protocol_mismatch"
        sock.close()

    def test_unknown_document(self, served):
        handle, _, _ = served
        with pytest.raises(ProtocolError) as err:
            connect_url(f"xmark://{handle.host}:{handle.port}/nope")
        assert err.value.code == "unknown_document"

    def test_single_document_is_the_default(self, served):
        handle, _, _ = served
        database = connect_url(f"xmark://{handle.host}:{handle.port}/")
        assert database._client.welcome["document"] == "auction"
        database.close()

    def test_request_before_hello(self, served):
        handle, _, _ = served
        sock = raw_connection(handle)
        raw_send(sock, {"kind": "ping"})
        reply = raw_recv(sock)
        assert reply["kind"] == "error" and reply["code"] == "bad_message"
        sock.close()


# -- framing damage -------------------------------------------------------------------


class TestFramingFuzz:
    """Garbled wire bytes -> typed error + surviving connection/state."""

    def test_truncated_header_then_eof(self, served, remote):
        handle, _, _ = served
        sock = raw_connection(handle)
        sock.sendall(b"\x00\x00")       # half a length header
        sock.close()                    # peer vanishes mid-header
        # The server must survive: an established connection still works.
        assert remote.session().execute(1).rowcount >= 0

    def test_truncated_payload_then_eof(self, served, remote):
        handle, _, _ = served
        sock = raw_connection(handle)
        body = json.dumps({"kind": "ping"}).encode()
        sock.sendall(struct.pack(">I", len(body) + 64) + body)
        sock.close()                    # length promised more than was sent
        assert remote.session().execute(1).serialize() is not None

    def test_oversized_length_is_typed_then_closed(self, served):
        handle, _, server = served
        sock = raw_connection(handle)
        raw_hello(sock)
        sock.sendall(struct.pack(">I", server.max_frame + 1))
        reply = raw_recv(sock)
        assert reply["kind"] == "error"
        assert reply["code"] == "frame_too_large"
        # The stream is desynchronized; the server hangs up.
        assert raw_recv(sock) is None
        sock.close()

    def test_mid_payload_junk_survives(self, served):
        handle, _, _ = served
        sock = raw_connection(handle)
        raw_hello(sock)
        for junk in (b"\xfe\xed\xfa\xce not json at all",
                     b'{"kind": "execute", "query": ',   # cut mid-JSON
                     b'"just a string"',
                     b"[1, 2, 3]",
                     b'{"no_kind": true}'):
            sock.sendall(struct.pack(">I", len(junk)) + junk)
            reply = raw_recv(sock)
            assert reply["kind"] == "error"
            assert reply["code"] in ("bad_frame", "bad_message")
        # Framing stayed aligned: the connection still serves queries.
        raw_send(sock, {"kind": "execute", "query": 1, "fetch": True,
                        "id": 9})
        reply = raw_recv(sock)
        assert reply["kind"] == "cursor" and reply["id"] == 9
        assert reply["done"] is True
        sock.close()

    def test_unknown_kind_is_typed(self, served):
        handle, _, _ = served
        sock = raw_connection(handle)
        raw_hello(sock)
        raw_send(sock, {"kind": "frobnicate", "id": 1})
        reply = raw_recv(sock)
        assert reply == {"kind": "error", "id": 1, "code": "bad_message",
                         "message": "unknown message kind 'frobnicate'"}
        sock.close()

    def test_oversized_outgoing_frame_refused(self):
        with pytest.raises(ProtocolError) as err:
            protocol.encode_frame({"kind": "x", "pad": "y" * protocol.MAX_FRAME})
        assert err.value.code == "frame_too_large"

    def test_damage_never_corrupts_served_state(self, served, remote):
        handle, database, _ = served
        before = database.document_digest()
        for offset in (0, 1, 3, 4, 7, 20):
            sock = raw_connection(handle)
            frame = protocol.encode_frame(
                {"kind": "hello", "protocol": PROTOCOL_VERSION,
                 "document": "auction"})
            sock.sendall(frame[:offset])
            sock.close()
        assert database.document_digest() == before
        assert remote.document_digest() == before


# -- queries over the wire ------------------------------------------------------------


class TestRemoteQueries:
    def test_q1_to_q20_bit_identical(self, served, remote):
        _, database, _ = served
        local = database.session()
        session = remote.session()
        for number in range(1, 21):
            expected = local.execute(number).serialize()
            got = session.execute(number).serialize()
            assert got == expected, f"Q{number} diverged over the wire"

    def test_small_pages_preserve_order(self, served, tiny_text):
        handle, database, _ = served
        paged = connect_url(handle.url, page_size=1)
        try:
            query = "for $p in /site/people/person return $p/name"
            expected = database.session().execute(query).serialize()
            assert paged.session().execute(query).serialize() == expected
        finally:
            paged.close()

    def test_prepared_query_roundtrip(self, remote):
        prepared = remote.session().prepare(2)
        assert isinstance(prepared.compiled, RemotePrepared)
        first = prepared.execute().serialize()
        assert prepared.execute().serialize() == first

    def test_params_bind_over_the_wire(self, served, remote):
        _, database, _ = served
        reply = remote._client.request({
            "kind": "execute",
            "query": "for $p in /site/people/person "
                     "where $p/@id = $who return $p/name",
            "params": {"who": "person0"},
            "fetch": True,
        })
        expected = database.session().execute(
            'for $p in /site/people/person '
            'where $p/@id = "person0" return $p/name').serialize()
        assert "\n".join(reply["rows"]) == expected

    def test_unknown_system_typed(self, remote):
        with pytest.raises(UnknownSystemError) as err:
            remote.session().execute(1, system="Z")
        assert err.value.available == ("D",)

    def test_syntax_error_typed(self, remote):
        with pytest.raises(QuerySyntaxError):
            remote.session().execute("for $x in").serialize()

    def test_explain_matches_in_process(self, served, remote):
        _, database, _ = served
        local = database.session().explain(8).as_dict()
        wire = remote.session().explain(8).as_dict()
        assert wire == local

    def test_digest_matches_in_process(self, served, remote):
        _, database, _ = served
        assert remote.document_digest() == database.document_digest()

    def test_cursor_quota_enforced(self, served):
        handle, _, server = served
        database = connect_url(handle.url, tenant="hoarder", page_size=1)
        try:
            limit = server.tenants.state("hoarder").quota.max_cursors
            query = "for $p in /site/people/person return $p"
            cursors = [database.session().execute(query)
                       for _ in range(limit)]
            with pytest.raises(TenantQuotaError):
                database.session().execute(query)
            for cursor in cursors:      # closing releases the slots
                cursor.close()
            database.session().execute(query).close()
        finally:
            database.close()

    def test_session_quota_enforced(self, tiny_text):
        database = repro.connect(tiny_text, systems=("D",))
        server = XMarkServer(default_quota=TenantQuota(max_sessions=1))
        server.add_document("auction", database, owned=True)
        with serve_in_thread(server) as handle:
            first = connect_url(handle.url)
            with pytest.raises(TenantQuotaError):
                connect_url(handle.url)
            first.close()
            connect_url(handle.url).close()     # slot released


# -- the write path over the wire -----------------------------------------------------


@pytest.fixture()
def write_served(tiny_text):
    """A function-scoped server (writes mutate the document)."""
    database = repro.connect(tiny_text, systems=("D",))
    server = XMarkServer()
    server.add_document("auction", database, owned=True)
    handle = serve_in_thread(server)
    yield handle, database
    handle.stop()


class TestRemoteWrites:
    def test_transaction_commits_and_digests_agree(self, write_served):
        handle, database = write_served
        remote = connect_url(handle.url)
        try:
            before = database.document_digest()
            person = parse('<person id="personW1"><name>Wire W</name>'
                           '</person>').root
            with remote.session().transaction() as txn:
                txn.register_person(person)
                txn.place_bid("open_auction0", "person0", 4.5,
                              "01/01/2026", "00:00:00")
            assert txn.summary["digest"] is not None
            assert database.document_digest() != before
            assert remote.document_digest() == database.document_digest()
        finally:
            remote.close()

    def test_rollback_leaves_state_untouched(self, write_served):
        handle, database = write_served
        remote = connect_url(handle.url)
        try:
            before = database.document_digest()
            txn = remote.session().transaction()
            txn.place_bid("open_auction0", "person0", 4.5,
                          "01/01/2026", "00:00:00")
            txn.rollback()
            assert database.document_digest() == before
        finally:
            remote.close()

    def test_commit_poisons_suspended_remote_cursor(self, write_served):
        handle, _ = write_served
        reader = connect_url(handle.url, page_size=1)
        writer = connect_url(handle.url)
        try:
            cursor = reader.session().execute(
                "for $p in /site/people/person return $p/name")
            assert cursor.fetchone() is not None    # suspend mid-stream
            with writer.session().transaction() as txn:
                txn.place_bid("open_auction0", "person0", 4.5,
                              "01/01/2026", "00:00:00")
            with pytest.raises(ClosedCursorError):
                cursor.fetchall()
        finally:
            reader.close()
            writer.close()

    def test_checkpoint_over_the_wire(self, tiny_text, tmp_path):
        database = repro.connect(tiny_text, systems=("D",),
                                 durable=str(tmp_path / "wal"))
        server = XMarkServer()
        server.add_document("auction", database, owned=True)
        with serve_in_thread(server) as handle:
            remote = connect_url(handle.url)
            try:
                with remote.session().transaction() as txn:
                    txn.place_bid("open_auction0", "person0", 4.5,
                                  "01/01/2026", "00:00:00")
                report = remote.checkpoint()
                assert report["records_dropped"] >= 1
            finally:
                remote.close()


# -- backpressure ---------------------------------------------------------------------


class TestBackpressure:
    def test_saturation_is_typed_not_hung(self, served):
        handle, _, server = served
        loop, ceiling = handle.loop, server.max_workers + server.queue_depth

        def _set_active(value: int):
            event = threading.Event()

            def apply():
                server._active = value
                event.set()
            loop.call_soon_threadsafe(apply)
            assert event.wait(10.0)

        _set_active(ceiling)            # pool + queue artificially full
        database = connect_url(handle.url)
        try:
            with pytest.raises(ServerBusyError):
                database.session().execute(1)
        finally:
            _set_active(0)
            database.close()
        assert server.registry.counter("server.busy_total").value >= 1

    def test_saturated_sweep_never_hangs(self, tiny_text):
        """Many clients vs a 1-worker pool: every request completes —
        rows or a typed ServerBusy — and every connection survives."""
        database = repro.connect(tiny_text, systems=("D",))
        server = XMarkServer(max_workers=1, queue_depth=1,
                             default_quota=TenantQuota(max_sessions=0))
        server.add_document("auction", database, owned=True)
        outcomes: list[str] = []
        failures: list[BaseException] = []
        lock = threading.Lock()
        with serve_in_thread(server) as handle:
            def client(worker: int) -> None:
                try:
                    remote = connect_url(handle.url, tenant=f"t{worker}")
                    try:
                        for _ in range(5):
                            try:
                                remote.session().execute(1).serialize()
                                result = "served"
                            except ServerBusyError:
                                result = "busy"
                            with lock:
                                outcomes.append(result)
                    finally:
                        remote.close()
                except BaseException as exc:
                    with lock:
                        failures.append(exc)

            threads = [threading.Thread(target=client, args=(n,))
                       for n in range(12)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
            assert not any(t.is_alive() for t in threads), \
                "a client hung under saturation"
        assert not failures, failures
        assert len(outcomes) == 60
        assert outcomes.count("served") >= 1


# -- observability --------------------------------------------------------------------


class TestServerObservability:
    def test_counters_and_stats(self, tiny_text):
        database = repro.connect(tiny_text, systems=("D",))
        server = XMarkServer()
        server.add_document("auction", database, owned=True)
        with serve_in_thread(server) as handle:
            remote = connect_url(handle.url, tenant="acme")
            try:
                remote.session().execute(1).serialize()
                stats = remote.stats()
            finally:
                remote.close()
        counters = stats["metrics"]["counters"]
        assert counters["server.accepts_total"] == 1
        assert counters['server.requests_total{kind="hello",tenant="-"}'] == 1
        assert counters['server.requests_total{kind="execute",tenant="acme"}'] == 1
        assert counters['net.bytes_in_total{tenant="acme"}'] > 0
        assert counters['net.bytes_out_total{tenant="acme"}'] > 0
        assert stats["tenants"]["acme"]["requests_total"] >= 1
        assert "server.request_ms" in stats["metrics"]["histograms"]
        # The served database keeps its own db.* accounting too.
        assert database.registry.counter(
            "db.queries_total", system="D", tenant="acme").value == 1

    def test_accept_spans_recorded(self, tiny_text):
        from repro.obs.trace import Tracer
        tracer = Tracer()
        database = repro.connect(tiny_text, systems=("D",))
        server = XMarkServer(tracer=tracer)
        server.add_document("auction", database, owned=True)
        with serve_in_thread(server) as handle:
            remote = connect_url(handle.url)
            remote.session().execute(1).serialize()
            remote.close()
        names = [span.name for span in tracer.roots]
        assert "server.accept" in names
        assert "server.request" in names
