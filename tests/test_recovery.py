"""Durability: WAL, snapshots, and crash-consistent recovery.

The proof obligations, in roughly the order the module asserts them:

* **Codec** — WAL records round-trip every typed operation exactly.
* **Clean recovery** — snapshot + full WAL replay reproduces the live
  store bit-for-bit (digest chain, serialization, and Q1-Q20 results)
  on every one of the seven architectures.
* **Crash matrix** (tests/faultinject.py) — for every record boundary
  and every mid-record offset class (torn header, torn payload, garbled
  magic/length/crc/payload), recovery yields *exactly* the surviving
  commit prefix: a half-record is dropped, never applied, and nothing
  logged after damage survives.
* **Sharded deployments** — a 6-shard store with per-shard WAL streams
  recovers through the merged LSN order; damage in any one stream cuts
  the global history at that commit and counts the records stranded in
  the other streams.
* **The facade** — ``repro.connect(durable=dir)`` logs every commit
  before applying it, reconnects by recovering, refuses forked base
  documents, checkpoints through ``Database.checkpoint`` and the
  ``xmark recover`` / ``xmark checkpoint`` commands, and mirrors
  deterministic failures (refused ops, aborted transactions) exactly
  through replay.
"""

from __future__ import annotations

import json
import shutil
from types import SimpleNamespace

import pytest

import faultinject
from repro.benchmark.queries import QUERIES, query_text
from repro.benchmark.systems import SYSTEMS, get_profile, make_store
from repro.db import connect
from repro.errors import (
    DurabilityError, RecoveryError, TransactionError, XMarkError,
)
from repro.shard.store import ShardedStore
from repro.storage.interface import chain_digest, store_document_text
from repro.storage.wal import (
    DurabilityManager, WalRecord, WriteAheadLog, decode_op, encode_op,
    recover, scan_wal,
)
from repro.storage.wal.snapshot import (
    document_snapshot, read_snapshot, sharded_snapshot, write_snapshot,
)
from repro.update.engine import apply_update
from repro.update.ops import CloseAuction, DeleteItem, PlaceBid, RegisterPerson
from repro.update.stream import UpdateStream
from repro.xmlio.parser import parse
from repro.xquery.evaluator import evaluate
from repro.xquery.planner import compile_query

OPS_IN_HISTORY = 8


def _oracle_history(store, *, seed: int, count: int = OPS_IN_HISTORY):
    """Apply ``count`` generated ops; record state after every prefix."""
    stream = UpdateStream(store, seed=seed)
    ops = []
    states = [(store.document_digest(), store_document_text(store))]
    for _ in range(count):
        op = stream.next_op()
        stream.note_applied(op)
        apply_update(store, op)
        ops.append(op)
        states.append((store.document_digest(), store_document_text(store)))
    return ops, states


@pytest.fixture(scope="module")
def history(tiny_text):
    """The no-crash oracle: the op sequence and every prefix state."""
    store = make_store("F")
    store.load(tiny_text)
    ops, states = _oracle_history(store, seed=417)
    return SimpleNamespace(base=tiny_text, ops=ops, states=states)


@pytest.fixture(scope="module")
def durable_dir(history, tmp_path_factory):
    """A pristine single-stream deployment holding the whole history."""
    directory = tmp_path_factory.mktemp("durable") / "deploy"
    manager = DurabilityManager(directory, sync="commit")
    base_digest, base_document = history.states[0]
    manager.initialize(document_snapshot(0, base_digest, base_document))
    for index, op in enumerate(history.ops):
        manager.log_commit([op], kind="op",
                           prev_digest=history.states[index][0],
                           digest=history.states[index + 1][0])
    manager.close()
    return directory


@pytest.fixture(scope="module")
def oracle_results(history):
    """Q1-Q20 on the never-crashed final document (System F)."""
    store = make_store("F")
    store.load(history.states[-1][1])
    return {
        number: evaluate(compile_query(
            query_text(number), store, get_profile("F"))).serialize()
        for number in sorted(QUERIES)
    }


# -- the record codec --------------------------------------------------------------


class TestWalCodec:
    def test_every_op_kind_round_trips(self):
        person = parse(
            '<person id="personX"><name>Crash Test</name>'
            '<emailaddress>mailto:x@y.edu</emailaddress></person>').root
        ops = (
            RegisterPerson(person),
            PlaceBid("open_auction1", "person2", 4.5, "08/08/2026",
                     "10:00:00"),
            CloseAuction("open_auction3", "08/08/2026"),
            DeleteItem("item7"),
        )
        for op in ops:
            assert decode_op(encode_op(op)).token() == op.token()

    def test_record_encode_decode(self):
        record = WalRecord(lsn=9, kind="txn",
                           ops=(DeleteItem("item1"), DeleteItem("item2")),
                           prev_digest="aa", digest="bb")
        (offset, decoded), (end, tail) = list(
            faultinject.iter_records(record.encode()))
        assert offset == 0 and decoded == record
        assert tail == "clean" and end == len(record.encode())

    def test_op_record_carries_exactly_one_op(self):
        with pytest.raises(DurabilityError):
            WalRecord(lsn=1, kind="op",
                      ops=(DeleteItem("item1"), DeleteItem("item2")),
                      prev_digest="", digest="")

    def test_group_commit_batches_fsyncs(self, tmp_path):
        log = WriteAheadLog(tmp_path / "s.wal", sync="batch", group_size=4)
        for lsn in range(1, 9):
            log.append(WalRecord(lsn=lsn, kind="op",
                                 ops=(DeleteItem(f"item{lsn}"),),
                                 prev_digest="p", digest="d"))
        assert log.fsyncs == 2          # two full groups of four
        log.close()
        assert log.fsyncs == 2          # nothing pending at close
        scan = scan_wal(tmp_path / "s.wal")
        assert scan.clean and len(scan.records) == 8

    def test_snapshot_crc_guards_content(self, tmp_path):
        path = tmp_path / "snap.json"
        write_snapshot(path, document_snapshot(3, "dg", "<site></site>"))
        assert read_snapshot(path)["lsn"] == 3
        payload = json.loads(path.read_text())
        payload["document"] = "<site><tampered/></site>"
        path.write_text(json.dumps(payload))
        with pytest.raises(RecoveryError):
            read_snapshot(path)


# -- clean recovery on every architecture ------------------------------------------


@pytest.mark.parametrize("system", sorted(SYSTEMS))
def test_clean_recovery_matches_oracle_everywhere(
        system, durable_dir, history, oracle_results):
    """Replay on each of the seven architectures: digest chain,
    serialization, and all twenty query results equal the oracle."""
    report = recover(durable_dir, backend=system)
    digest, document = history.states[-1]
    assert report.replayed == len(history.ops)
    assert report.skipped == 0 and not report.torn_tails
    assert report.digest == digest
    assert report.document == document
    store = make_store(system)
    store.load(report.document)
    for number in sorted(QUERIES):
        result = evaluate(compile_query(
            query_text(number), store, get_profile(system))).serialize()
        assert result == oracle_results[number], f"Q{number} diverged"


# -- the crash matrix --------------------------------------------------------------


def test_crash_matrix_every_boundary_and_offset_class(
        durable_dir, history, tmp_path):
    """Damage the WAL at every enumerated point; recovery must produce
    exactly the surviving prefix — digest and serialization both."""
    stream_file = durable_dir / "wal" / "stream-0000.wal"
    points = faultinject.crash_points(stream_file.read_bytes())
    labels = {point.label for point in points}
    assert labels == set(faultinject.EXPECTED_TAILS)
    assert len(points) == len(labels) * len(history.ops)
    for point in points:
        crashed = tmp_path / f"{point.label}-{point.offset}"
        shutil.copytree(durable_dir, crashed)
        faultinject.apply_crash(
            crashed / "wal" / "stream-0000.wal", point)
        report = recover(crashed)
        digest, document = history.states[point.survivors]
        where = f"{point.label}@{point.offset}"
        assert report.replayed == point.survivors, where
        assert report.digest == digest, where
        assert report.document == document, where
        if point.label == faultinject.BOUNDARY:
            assert not report.torn_tails, where
        else:
            assert (report.torn_tails[0]
                    in faultinject.EXPECTED_TAILS[point.label]), where


def test_tampered_snapshot_is_refused(durable_dir, tmp_path):
    crashed = tmp_path / "snap-tamper"
    shutil.copytree(durable_dir, crashed)
    snapshot = crashed / "snapshots" / "snap-000000000000.json"
    payload = json.loads(snapshot.read_text())
    payload["document"] = payload["document"].replace("person0", "personX", 1)
    snapshot.write_text(json.dumps(payload))
    with pytest.raises(RecoveryError):
        recover(crashed)


def test_recover_refuses_non_durable_directory(tmp_path):
    with pytest.raises(RecoveryError):
        recover(tmp_path)


# -- sharded deployments: per-shard WALs -------------------------------------------

SHARD_COUNT = 6
SHARD_BACKENDS = ("F", "A", "D")


@pytest.fixture(scope="module")
def sharded_history(tiny_text, tmp_path_factory):
    """A 6-shard deployment: per-shard streams, commits routed by shard."""
    store = ShardedStore(SHARD_COUNT, SHARD_BACKENDS)
    store.load(tiny_text)
    directory = tmp_path_factory.mktemp("sharded") / "deploy"
    manager = DurabilityManager(directory, sync="commit")
    state = store.partition_state()
    manager.initialize(
        sharded_snapshot(0, store.document_digest(),
                         backends=list(store.backends),
                         fragments=store.shard_fragment_texts(),
                         extent_seqs=state["extent_seqs"],
                         id_map=state["id_map"]),
        streams=SHARD_COUNT, shard_backends=list(store.backends))
    stream = UpdateStream(store, seed=829)
    states = [(store.document_digest(), store_document_text(store))]
    routes = []
    for _ in range(10):
        op = stream.next_op()
        stream.note_applied(op)
        prev = store.document_digest()
        digest = chain_digest(prev, op.token())
        routes.append(manager.log_commit(
            [op], kind="op", prev_digest=prev, digest=digest,
            stream=store.route_op(op)).lsn)
        apply_update(store, op)
        states.append((store.document_digest(), store_document_text(store)))
    manager.close()
    return SimpleNamespace(directory=directory, states=states,
                           store=store)


def test_sharded_clean_recovery_reassembles_the_partition(sharded_history):
    report = recover(sharded_history.directory)
    digest, document = sharded_history.states[-1]
    assert report.digest == digest
    assert report.document == document
    recovered = report.sharded_store
    assert recovered is not None
    assert recovered.shard_count == SHARD_COUNT
    assert store_document_text(recovered) == document
    # the reassembled partition places every entity where the live one did
    assert (recovered.partition_state()
            == sharded_history.store.partition_state())


def test_sharded_crash_in_any_stream_cuts_the_merged_history(
        sharded_history, tmp_path):
    """Damage each non-empty stream's last record: the global history is
    cut at that commit, and later commits stranded in *other* streams
    are dropped and counted."""
    wal_dir = sharded_history.directory / "wal"
    lsns_by_stream = {
        index: [record.lsn for record in
                scan_wal(wal_dir / f"stream-{index:04d}.wal").records]
        for index in range(SHARD_COUNT)
        if (wal_dir / f"stream-{index:04d}.wal").exists()
    }
    assert len(lsns_by_stream) > 1, "history never crossed shards"
    all_lsns = sorted(lsn for lsns in lsns_by_stream.values()
                      for lsn in lsns)
    assert all_lsns == list(range(1, 11))
    for index, lsns in lsns_by_stream.items():
        stream_file = wal_dir / f"stream-{index:04d}.wal"
        points = faultinject.crash_points(stream_file.read_bytes())
        last = [point for point in points
                if point.record_lsn == lsns[-1]
                and point.label in (faultinject.BOUNDARY,
                                    faultinject.MID_PAYLOAD,
                                    faultinject.GARBLED_CRC)]
        for point in last:
            crashed = tmp_path / f"s{index}-{point.label}"
            shutil.copytree(sharded_history.directory, crashed)
            faultinject.apply_crash(
                crashed / "wal" / f"stream-{index:04d}.wal", point)
            report = recover(crashed)
            cut = lsns[-1]              # first missing commit
            digest, document = sharded_history.states[cut - 1]
            where = f"stream {index} {point.label}"
            assert report.digest == digest, where
            assert report.document == document, where
            assert report.sharded_store is not None, where
            stranded = sum(1 for lsn in all_lsns if lsn > cut) - (
                sum(1 for lsn in lsns if lsn > cut))
            assert report.dropped_after_gap == stranded, where


# -- the facade: connect(durable=...) ----------------------------------------------


class TestDurableConnection:
    def test_fresh_write_close_reconnect(self, tiny_text, tmp_path):
        db = connect(tiny_text, systems=("F",), durable=str(tmp_path / "d"))
        stream = UpdateStream(db.store("F"), seed=5)
        for _ in range(3):
            op = stream.next_op()
            stream.note_applied(op)
            db.apply_transaction([op])
        digest = db.document_digest("F")
        document = store_document_text(db.store("F"))
        rows = db.execute("F", 8, stream=False).fetchall()
        db.close()

        db2 = connect(None, systems=("F",), durable=str(tmp_path / "d"))
        try:
            assert db2.recovery is not None
            assert db2.recovery.replayed == 3
            assert db2.document_digest("F") == digest
            assert store_document_text(db2.store("F")) == document
            assert len(db2.execute("F", 8, stream=False).fetchall()) == len(rows)
        finally:
            db2.close()

    def test_commit_is_durable_before_apply(self, tiny_text, tmp_path):
        """The WAL holds the commit even if the process dies right after
        log_commit returned — the stream already carries the record."""
        db = connect(tiny_text, systems=("F",), durable=str(tmp_path / "d"))
        stream = UpdateStream(db.store("F"), seed=5)
        op = stream.next_op()
        db.apply_transaction([op])
        scan = scan_wal(tmp_path / "d" / "wal" / "stream-0000.wal")
        db.close()
        assert scan.clean and scan.last_lsn() == 1
        assert scan.records[0].ops[0].token() == op.token()

    def test_reconnect_refuses_forked_base_document(self, tiny_text,
                                                    small_text, tmp_path):
        connect(tiny_text, systems=("F",), durable=str(tmp_path / "d")).close()
        with pytest.raises(DurabilityError):
            connect(small_text, systems=("F",), durable=str(tmp_path / "d"))
        # the original base document reattaches fine
        connect(tiny_text, systems=("F",), durable=str(tmp_path / "d")).close()

    def test_document_required_without_durable_state(self, tmp_path):
        from repro.errors import BenchmarkError
        with pytest.raises(BenchmarkError):
            connect(None, systems=("F",))
        with pytest.raises(DurabilityError):
            connect(None, systems=("F",), durable=str(tmp_path / "empty"))

    def test_checkpoint_compacts_and_recovers(self, tiny_text, tmp_path):
        db = connect(tiny_text, systems=("F",), durable=str(tmp_path / "d"))
        stream = UpdateStream(db.store("F"), seed=5)
        for _ in range(4):
            op = stream.next_op()
            stream.note_applied(op)
            db.apply_transaction([op])
        outcome = db.checkpoint()
        assert outcome["lsn"] == 4 and outcome["records_dropped"] == 4
        op = stream.next_op()
        db.apply_transaction([op])
        digest = db.document_digest("F")
        db.close()

        report = recover(tmp_path / "d")
        assert report.snapshot_lsn == 4
        assert report.replayed == 1     # only the post-checkpoint commit
        assert report.digest == digest

    def test_checkpoint_requires_durability(self, tiny_text):
        db = connect(tiny_text, systems=("F",))
        try:
            with pytest.raises(DurabilityError):
                db.checkpoint()
        finally:
            db.close()

    def test_aborted_transaction_replays_to_the_same_state(
            self, tiny_text, tmp_path):
        """A txn that fails mid-batch is logged, partially applied, and
        digest-re-chained — recovery must mirror all three."""
        db = connect(tiny_text, systems=("F",), durable=str(tmp_path / "d"))
        stream = UpdateStream(db.store("F"), seed=5)
        good = stream.next_op()
        with pytest.raises(TransactionError):
            db.apply_transaction([good, DeleteItem("no-such-item")])
        digest = db.document_digest("F")
        document = store_document_text(db.store("F"))
        db.close()

        report = recover(tmp_path / "d")
        assert report.skipped == 1 and report.replayed == 0
        assert report.digest == digest
        assert report.document == document

    def test_torn_tail_is_repaired_on_reconnect(self, tiny_text, tmp_path):
        db = connect(tiny_text, systems=("F",), durable=str(tmp_path / "d"))
        stream = UpdateStream(db.store("F"), seed=5)
        for _ in range(2):
            op = stream.next_op()
            stream.note_applied(op)
            db.apply_transaction([op])
        db.close()
        stream_file = tmp_path / "d" / "wal" / "stream-0000.wal"
        data = stream_file.read_bytes()
        stream_file.write_bytes(data[:-7])      # tear the last record

        db2 = connect(None, systems=("F",), durable=str(tmp_path / "d"))
        try:
            assert db2.recovery.replayed == 1
            assert db2.recovery.torn_tails == {0: "torn-payload"}
            # the tail was truncated; new commits append after clean bytes
            stream2 = UpdateStream(db2.store("F"), seed=99)
            op = stream2.next_op()
            db2.apply_transaction([op])
            digest = db2.document_digest("F")
        finally:
            db2.close()
        report = recover(tmp_path / "d")
        assert not report.torn_tails
        assert report.digest == digest

    def test_sharded_connection_adopts_recovered_partition(
            self, tiny_text, tmp_path):
        db = connect(tiny_text, systems=(), shards=3, backends=("F", "A"),
                     durable=str(tmp_path / "d"))
        assert db.durability.stream_count == 3
        stream = UpdateStream(db.store("S"), seed=7)
        for _ in range(4):
            op = stream.next_op()
            stream.note_applied(op)
            db.apply_transaction([op])
        digest = db.document_digest("S")
        document = store_document_text(db.store("S"))
        db.close()

        db2 = connect(None, systems=(), shards=3, backends=("F", "A"),
                      durable=str(tmp_path / "d"))
        try:
            assert db2.store("S") is db2.recovery.sharded_store
            assert db2.document_digest("S") == digest
            assert store_document_text(db2.store("S")) == document
            rows = db2.execute("S", 13, stream=False).fetchall()
            assert rows is not None
        finally:
            db2.close()

    def test_service_connection_logs_and_recovers(self, tiny_text, tmp_path):
        db = connect(tiny_text, systems=("F",), service=True,
                     durable=str(tmp_path / "d"))
        assert db.service.durability is db.durability
        stream = UpdateStream(db.store("F"), seed=7)
        op = stream.next_op()
        stream.note_applied(op)
        db.service.apply_update(op)     # kind "op": per-op digest advance
        op2 = stream.next_op()
        db.apply_transaction([op2])     # kind "txn": batch digest advance
        digest = db.document_digest("F")
        db.close()

        db2 = connect(None, systems=("F",), service=True,
                      durable=str(tmp_path / "d"))
        try:
            assert db2.recovery.replayed == 2
            assert db2.document_digest("F") == digest
            with pytest.raises(DurabilityError):
                db2.service.reload_document("<site></site>")
        finally:
            db2.close()

    def test_wal_metrics_and_counters(self, tiny_text, tmp_path):
        db = connect(tiny_text, systems=("F",), durable=str(tmp_path / "d"))
        stream = UpdateStream(db.store("F"), seed=5)
        op = stream.next_op()
        db.apply_transaction([op])
        exported = db.registry.snapshot()
        db.close()
        counters = exported["counters"]
        assert counters.get('wal.records_total{stream="0"}') == 1
        assert counters.get('wal.fsyncs_total{stream="0"}') == 1


# -- the CLI -----------------------------------------------------------------------


def test_cli_recover_and_checkpoint(tiny_text, tmp_path, capsys):
    from repro.cli import main
    db = connect(tiny_text, systems=("F",), durable=str(tmp_path / "d"))
    stream = UpdateStream(db.store("F"), seed=5)
    for _ in range(2):
        op = stream.next_op()
        stream.note_applied(op)
        db.apply_transaction([op])
    digest = db.document_digest("F")
    db.close()

    out = tmp_path / "doc.xml"
    report_json = tmp_path / "recover.json"
    assert main(["recover", "--dir", str(tmp_path / "d"),
                 "--out", str(out), "--json", str(report_json)]) == 0
    assert digest in capsys.readouterr().out
    assert json.loads(report_json.read_text())["replayed"] == 2
    assert out.read_text().startswith("<site")

    assert main(["checkpoint", "--dir", str(tmp_path / "d"),
                 "--json", str(tmp_path / "cp.json")]) == 0
    assert json.loads((tmp_path / "cp.json").read_text())["lsn"] == 2
    report = recover(tmp_path / "d")
    assert report.snapshot_lsn == 2 and report.replayed == 0
    assert report.digest == digest

    assert main(["recover", "--dir", str(tmp_path / "nowhere")]) == 1
