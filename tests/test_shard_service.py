"""The sharded deployment behind the query service.

The service serves the sharded store as one more system: same admission,
same result-cache keying (on the sharded store's global digest chain),
same write path through the update engine — plus the executor's
distributed plans underneath.
"""

from __future__ import annotations

import pytest

from repro.benchmark.queries import query_text
from repro.errors import BenchmarkError
from repro.service import QueryService, ShardSpec, WorkloadSpec


@pytest.fixture(scope="module")
def sharded_service(tiny_text):
    with QueryService(
        tiny_text, ("F",),
        shard_spec=ShardSpec(shards=3, backends=("F",)),
    ) as service:
        yield service


class TestShardedService:
    def test_serves_the_shard_system(self, sharded_service):
        assert "S" in sharded_service.stores
        assert "S" in sharded_service.load_reports
        outcome = sharded_service.execute("S", 1)
        assert outcome.system == "S"
        assert outcome.result_size == 1

    @pytest.mark.parametrize("number", (1, 2, 5, 8, 13, 20))
    def test_sharded_answers_match_the_unsharded_system(
            self, sharded_service, number):
        sharded = sharded_service.execute("S", number)
        unsharded = sharded_service.execute("F", number)
        assert sharded.result.serialize() == unsharded.result.serialize()

    def test_result_cache_serves_repeats(self, tiny_text):
        with QueryService(tiny_text, ("F",),
                          shard_spec=ShardSpec(shards=2)) as service:
            first = service.execute("S", 5)
            again = service.execute("S", 5)
            assert not first.result_cache_hit
            assert again.result_cache_hit
            assert again.result.serialize() == first.result.serialize()

    def test_write_path_keeps_the_sharded_lineage(self, tiny_text):
        with QueryService(tiny_text, ("F",),
                          shard_spec=ShardSpec(shards=3)) as service:
            summary = service.apply_next_update()
            assert set(summary["systems"]) == {"F", "S"}
            digests = {store.document_digest()
                       for store in service.stores.values()}
            assert len(digests) == 1     # same op chain, same digest
            sharded = service.execute("S", 8)
            unsharded = service.execute("F", 8)
            assert sharded.result.serialize() == unsharded.result.serialize()

    def test_reload_swaps_the_sharded_deployment(self, tiny_text, small_text):
        with QueryService(tiny_text, ("F",),
                          shard_spec=ShardSpec(shards=2)) as service:
            before = service.execute("S", 5).result.serialize()
            first_executor = service._shard_executor
            service.reload_document(small_text)
            assert service._shard_executor is not first_executor
            after = service.execute("S", 5)
            expected = service.execute("F", 5)
            assert after.result.serialize() == expected.result.serialize()
            assert (before == after.result.serialize()) is False

    def test_workload_can_target_the_shard_system(self, sharded_service):
        snapshot = sharded_service.run_workload(
            WorkloadSpec(clients=2, requests_per_client=4, systems=("S",)))
        assert snapshot["completed"] == 8
        assert snapshot["errors"] == 0

    def test_shard_stats_shape(self, sharded_service):
        sharded_service.execute("S", 5)
        stats = sharded_service.shard_stats()
        assert stats["partition"]["shards"] == 3
        assert len(stats["shard_digests"]) == 3
        assert "partial_cache" in stats and "plan_cache" in stats

    def test_unsharded_service_has_no_shard_stats(self, tiny_text):
        with QueryService(tiny_text, ("F",)) as service:
            assert service.shard_stats() == {}

    def test_shard_name_collision_is_rejected(self, tiny_text):
        with pytest.raises(BenchmarkError):
            QueryService(tiny_text, ("F",),
                         shard_spec=ShardSpec(shards=2, name="D"))

    def test_index_stats_include_the_global_sharded_set(self, sharded_service):
        stats = sharded_service.index_stats()
        assert "S" in stats
        assert stats["S"]["value"]       # the global IndexSet built at load
