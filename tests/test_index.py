"""The secondary-index subsystem: build correctness, probe/scan equivalence,
planner access-path choices, and per-document invalidation.

The central property (the contract everything else builds on): **every
indexed probe returns exactly the node set a full scan returns**, on all
seven store architectures, for both the tiny and the small document.  The
scan oracle below never touches an index — it walks the store's navigation
API directly — so an index that lied about an extent or a bucket would be
caught here before it could corrupt a query result.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.benchmark.queries import query_text
from repro.benchmark.systems import SYSTEMS, get_profile, make_store
from repro.index import extract_values, normalize_key
from repro.service import QueryService
from repro.xquery.evaluator import evaluate
from repro.xquery.planner import SystemProfile, compile_query

ALL_SYSTEMS = tuple(sorted(SYSTEMS))
INDEXED_SYSTEMS = tuple(s for s in ALL_SYSTEMS
                        if get_profile(s).use_value_index
                        or get_profile(s).use_sorted_index)


def _scan_extent(store, path):
    """The extent of a label path via navigation only (the oracle)."""
    root = store.root()
    if store.tag(root) != path[0]:
        return []
    nodes = [root]
    for tag in path[1:]:
        nodes = [child for node in nodes
                 for child in store.children_by_tag(node, tag)]
    return nodes


def _scan_value_matches(store, extent, accessor, raw):
    """Extent nodes any of whose accessor values equals ``raw`` under
    runtime-casting comparison semantics."""
    key = normalize_key(raw)
    return [
        node for node in extent
        if any(normalize_key(value) == key and normalize_key(value) is not None
               for value in extract_values(store, node, accessor))
    ]


_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _scan_range_matches(store, extent, accessor, op, bound):
    """Extent nodes any of whose accessor values satisfies ``value OP
    bound`` numerically (non-castable values never match, as at runtime)."""
    compare = _OPS[op]
    matched = []
    for node in extent:
        for value in extract_values(store, node, accessor):
            key = normalize_key(value)
            if isinstance(key, float) and compare(key, bound):
                matched.append(node)
                break
    return matched


def _dedupe_doc_order(entries):
    seen = set()
    out = []
    for seq, handle in sorted(entries, key=lambda entry: entry[0]):
        if seq not in seen:
            seen.add(seq)
            out.append(handle)
    return out


@pytest.fixture(scope="module")
def tiny_stores(tiny_text):
    """All seven systems loaded with the tiny document."""
    stores = {}
    for name in SYSTEMS:
        store = make_store(name)
        store.load(tiny_text)
        stores[name] = store
    return stores


@pytest.fixture(params=["tiny", "small"], scope="module")
def store_set(request, tiny_stores, loaded_stores):
    """Each document size in turn; every test below runs on both."""
    return tiny_stores if request.param == "tiny" else loaded_stores


# -- build ----------------------------------------------------------------------------


class TestBuild:
    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    def test_every_store_builds_indexes_at_load(self, store_set, system):
        indexes = store_set[system].indexes
        assert indexes is not None
        assert indexes.nodes_walked > 0
        assert indexes.values and indexes.sorteds and indexes.paths is not None

    def test_extents_identical_across_architectures(self, store_set):
        """Same spec + same document => same index cardinalities on every
        physical mapping (the builder is store-agnostic)."""
        summaries = {name: store.indexes.summary()
                     for name, store in store_set.items()}
        reference = summaries["G"]
        for name, summary in summaries.items():
            assert summary["nodes_walked"] == reference["nodes_walked"], name
            for mine, theirs in zip(summary["value"], reference["value"]):
                assert (mine["entries"], mine["distinct_keys"]) == \
                       (theirs["entries"], theirs["distinct_keys"]), name
            for mine, theirs in zip(summary["sorted"], reference["sorted"]):
                assert mine["entries"] == theirs["entries"], name

    def test_schema_store_build_parses_no_fragments(self, small_text):
        """The stop-tag walk must keep System C's CLOBs unparsed.  The
        stats counter is reset at the end of mark_loaded, so the observable
        guard is the fragment buffer pool: any parse during the build would
        have populated it."""
        from repro.storage.schema_store import SchemaStore
        store = SchemaStore()
        store.load(small_text)
        assert store.indexes is not None
        assert len(store._frag_xml) > 0        # there were fragments to tempt it
        assert store._frag_cache == {}         # ...and none was parsed

    def test_person_id_extent_matches_document(self, loaded_stores,
                                               small_document):
        persons = small_document.root.find("people").find_all("person")
        for name, store in loaded_stores.items():
            index = store.indexes.value_field(
                ("site", "people", "person"), ("@id",))
            assert index.extent_size == len(persons), name
            assert index.distinct_keys == len(persons), name


# -- the probe == scan property -------------------------------------------------------


class TestProbeEqualsScan:
    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    def test_value_probe_returns_exact_scan_set(self, store_set, system):
        """Every key of every value index: probe == scan, node for node."""
        store = store_set[system]
        for (path, accessor), index in store.indexes.values.items():
            extent = _scan_extent(store, path)
            assert index.extent_size == len(extent), (path, accessor)
            raws = {raw for node in extent
                    for raw in extract_values(store, node, accessor)}
            for raw in raws:
                probed = [handle for _seq, handle in index.probe(raw)]
                assert probed == _scan_value_matches(store, extent, accessor, raw), \
                    (path, accessor, raw)
        # A key that exists nowhere probes empty.
        index = store.indexes.value_field(("site", "people", "person"), ("@id",))
        assert index.probe("no-such-person") == []

    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    @given(bound=st.floats(min_value=-10.0, max_value=200000.0,
                           allow_nan=False, allow_infinity=False),
           op=st.sampled_from(sorted(_OPS)))
    @settings(max_examples=25, deadline=None)
    def test_sorted_range_returns_exact_scan_set(self, store_set, system,
                                                 bound, op):
        """Any bound, any inequality: range probe == numeric scan filter."""
        store = store_set[system]
        for (path, accessor), index in store.indexes.sorteds.items():
            extent = _scan_extent(store, path)
            probed = _dedupe_doc_order(index.range(op, bound))
            assert probed == _scan_range_matches(store, extent, accessor, op, bound), \
                (path, accessor, op, bound)

    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    def test_path_extents_return_exact_scan_set(self, store_set, system):
        """Every dictionary-encoded path: extent == navigation walk."""
        store = store_set[system]
        indexes = store.indexes
        for path in indexes.paths.paths():
            if not indexes.covers_path(path):
                continue
            assert indexes.path_extent(path) == _scan_extent(store, path), path

    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    def test_uncovered_paths_are_refused_not_guessed(self, store_set, system):
        """Paths through a stop tag are outside the walk: the index must
        say "not covered" rather than return a wrong empty extent."""
        indexes = store_set[system].indexes
        fragment_interior = ("site", "regions", "europe", "item",
                            "description", "parlist", "listitem")
        assert not indexes.covers_path(fragment_interior)
        assert indexes.path_extent(fragment_interior) is None
        # ...while a merely-absent path under covered territory is an
        # honest empty extent.
        assert indexes.covers_path(("site", "people", "bogus")) is True
        assert indexes.path_extent(("site", "people", "bogus")) == []


# -- planner choices ------------------------------------------------------------------


def _scan_profile(system: str) -> SystemProfile:
    from dataclasses import replace
    profile = get_profile(system)
    return replace(profile, name=profile.name + "-scan",
                   use_id_index=False, use_path_index=False,
                   use_value_index=False, use_sorted_index=False)


class TestPlannerChoices:
    def test_q1_value_probe_on_e(self, loaded_stores):
        compiled = compile_query(query_text(1), loaded_stores["E"], get_profile("E"))
        plans = [p for p in compiled.path_plans.values() if p.kind == "value_probe"]
        assert len(plans) == 1
        assert plans[0].prefix == ("site", "people", "person")
        assert plans[0].accessor == ("@id",)
        assert plans[0].est_rows < plans[0].scan_rows

    def test_q5_range_plan_with_cost_stats(self, loaded_stores):
        compiled = compile_query(query_text(5), loaded_stores["D"], get_profile("D"))
        assert len(compiled.range_plans) == 1
        plan = next(iter(compiled.range_plans.values()))
        assert plan.path == ("site", "closed_auctions", "closed_auction")
        assert plan.accessor == ("price", "text()")
        assert plan.op == ">=" and plan.bound == 40.0
        assert plan.est_rows < plan.scan_rows

    def test_q8_hash_join_is_index_backed(self, loaded_stores):
        for system in ("A", "D"):
            compiled = compile_query(query_text(8), loaded_stores[system],
                                     get_profile(system))
            joins = list(compiled.join_plans.values())
            assert len(joins) == 1
            assert joins[0].strategy == "hash"
            assert joins[0].index_kind == "value"
            assert joins[0].index_accessor == ("buyer", "@person")

    def test_q12_sorted_join_served_from_index_on_d(self, loaded_stores):
        compiled = compile_query(query_text(12), loaded_stores["D"], get_profile("D"))
        joins = [j for j in compiled.join_plans.values() if j.strategy == "sorted"]
        assert len(joins) == 1
        assert joins[0].index_kind == "sorted"
        assert joins[0].index_scale == 5000.0
        assert joins[0].index_path == ("site", "open_auctions", "open_auction",
                                       "initial")

    def test_q20_income_predicates_become_range_probes(self, loaded_stores):
        compiled = compile_query(query_text(20), loaded_stores["D"], get_profile("D"))
        probes = [p for p in compiled.path_plans.values() if p.kind == "range_probe"]
        assert {(p.op, p.bound) for p in probes} == {(">=", 100000.0), ("<", 30000.0)}

    def test_exactly_one_over_optional_field_is_not_index_backed(self, loaded_stores):
        """exactly-one() raises on profiles without @income; an index probe
        would silently skip them, so the planner must refuse the rewrite
        (the raw-cardinality counters prove the wrapper can raise here)."""
        from repro.errors import QueryError
        query = ('for $f in document("auction.xml")/site/people/person/profile '
                 'where exactly-one($f/@income) > 5000 return $f/@income')
        store = loaded_stores["D"]
        income = store.indexes.sorted_field(
            ("site", "people", "person", "profile"), ("@income",))
        assert income.nodes_empty > 0      # the document that makes it unsafe
        compiled = compile_query(query, store, get_profile("D"))
        assert not compiled.range_plans
        with pytest.raises(QueryError, match="exactly-one"):
            evaluate(compiled)
        with pytest.raises(QueryError, match="exactly-one"):
            evaluate(compile_query(query, store, _scan_profile("D")))

    def test_safe_cardinality_wrapper_keeps_index_backing(self, loaded_stores):
        """Q12's exactly-one($i/text()) over open_auction/initial is provably
        single-valued, so the sorted join stays index-backed."""
        store = loaded_stores["D"]
        initial = store.indexes.sorted_field(
            ("site", "open_auctions", "open_auction", "initial"), ("text()",))
        assert initial.nodes_empty == 0 and initial.nodes_multi == 0
        compiled = compile_query(query_text(12), store, get_profile("D"))
        assert any(j.index_kind == "sorted" for j in compiled.join_plans.values())

    def test_scan_profiles_plan_no_probes(self, loaded_stores):
        for system in ("D", "E"):
            compiled = compile_query(query_text(1), loaded_stores[system],
                                     _scan_profile(system))
            kinds = {p.kind for p in compiled.path_plans.values()}
            assert kinds == {"steps"}
            assert not compiled.range_plans

    def test_scan_only_systems_never_probe(self, loaded_stores):
        for system in ("F", "G"):
            for query in (1, 5, 20):
                compiled = compile_query(query_text(query), loaded_stores[system],
                                         get_profile(system))
                assert {p.kind for p in compiled.path_plans.values()} == {"steps"}
                assert not compiled.range_plans


# -- end-to-end equivalence: indexed plans == scan plans ------------------------------


class TestIndexedExecutionMatchesScan:
    @pytest.mark.parametrize("system", INDEXED_SYSTEMS)
    @pytest.mark.parametrize("query", (1, 2, 5, 8, 12, 20))
    def test_same_results_with_and_without_indexes(self, loaded_stores,
                                                   system, query):
        store = loaded_stores[system]
        indexed = evaluate(compile_query(query_text(query), store,
                                         get_profile(system)))
        scanned = evaluate(compile_query(query_text(query), store,
                                         _scan_profile(system)))
        assert indexed.serialize() == scanned.serialize()

    def test_probes_count_as_index_lookups(self, loaded_stores):
        store = loaded_stores["E"]
        compiled = compile_query(query_text(1), store, get_profile("E"))
        before = store.stats.index_lookups
        evaluate(compiled)
        assert store.stats.index_lookups > before


# -- invalidation ---------------------------------------------------------------------


class TestInvalidation:
    def test_dropped_indexes_degrade_to_scan_results(self, small_text):
        """A compiled plan survives index invalidation: the evaluator falls
        back to the scan and the results stay identical."""
        store = make_store("E")
        store.load(small_text)
        profile = get_profile("E")
        plans = {q: compile_query(query_text(q), store, profile)
                 for q in (1, 2, 5, 8)}
        with_indexes = {q: evaluate(c).serialize() for q, c in plans.items()}
        store.drop_indexes()
        assert store.indexes is None
        without = {q: evaluate(c).serialize() for q, c in plans.items()}
        assert with_indexes == without

    def test_service_reload_invalidates_indexes_with_results(self, tiny_text,
                                                             small_text):
        with QueryService(tiny_text, ("D",), max_workers=2) as service:
            first = service.execute("D", 1)
            old_store = service.stores["D"]
            old_indexes = old_store.indexes
            assert old_indexes is not None
            assert "D" in service.index_stats()
            service.reload_document(small_text)
            # Superseded per-document state is gone as one unit: the old
            # store's indexes and the old digest's cached results.
            assert old_store.indexes is None
            assert service.result_cache.stats.invalidations >= 1
            fresh = service.stores["D"]
            assert fresh.indexes is not None
            assert fresh.indexes is not old_indexes
            again = service.execute("D", 1)
            assert again.result_cache_hit is False
            assert len(again.result) == len(first.result)
