"""The runtime lock-order witness and its cross-check with the static
graph.

The self-test intentionally inverts a lock pair and requires the
witness to report the cycle; the cross-check drives a real service
workload under the witness and requires that neither the dynamic graph
nor its union with the static graph contains any ordering cycle — the
live counterpart of the CI lockwitness run over the tier-1 suite.
"""

from __future__ import annotations

import threading
from pathlib import Path

import pytest

from repro.analyze import Project, cross_check, default_src_root
from repro.analyze.lockwitness import LockWitness, _WitnessedLock
from repro.service import QueryService, WorkloadGenerator, WorkloadSpec

HERE = Path(__file__).resolve().parent

#: A witness that records locks allocated from this test file.
def local_witness() -> LockWitness:
    return LockWitness(prefixes=(str(HERE),), src_root=HERE)


class TestWitnessMechanics:
    def test_foreign_frames_stay_unwrapped(self):
        with local_witness():
            # allocated via a stdlib frame on the repro witness's behalf:
            # the factory filter must leave non-matching frames alone
            import queue
            q = queue.Queue()
            assert not isinstance(q.mutex, _WitnessedLock)

    def test_matching_frames_get_proxies(self):
        with local_witness() as witness:
            lock = threading.Lock()
            assert isinstance(lock, _WitnessedLock)
            with lock:
                pass
        assert witness.cycles() == []

    def test_no_edges_without_nesting(self):
        with local_witness() as witness:
            a = threading.Lock()
            b = threading.Lock()
            with a:
                pass
            with b:
                pass
        assert witness.edges() == {}

    def test_rlock_reentrancy_records_no_self_edge(self):
        with local_witness() as witness:
            lock = threading.RLock()
            with lock:
                with lock:
                    pass
        assert witness.edges() == {}
        assert witness.cycles() == []

    def test_uninstall_restores_factories(self):
        before = threading.Lock
        with local_witness():
            assert threading.Lock is not before
        assert threading.Lock is before


class TestInvertedPairSelfTest:
    """The intentional inversion the witness must catch."""

    def test_single_thread_inversion_is_a_cycle(self):
        with local_witness() as witness:
            a = threading.Lock()
            b = threading.Lock()
            with a:
                with b:        # order a -> b
                    pass
            with b:
                with a:        # inversion b -> a
                    pass
        cycles = witness.cycles()
        assert len(cycles) == 1
        assert len(cycles[0]) == 2

    def test_cross_thread_inversion_is_a_cycle(self):
        with local_witness() as witness:
            a = threading.Lock()
            b = threading.Lock()

            def forward():
                with a:
                    with b:
                        pass

            def backward():
                with b:
                    with a:
                        pass

            forward()
            worker = threading.Thread(target=backward)
            worker.start()
            worker.join()
        assert witness.cycles()

    def test_report_shape(self):
        with local_witness() as witness:
            a = threading.Lock()
            b = threading.Lock()
            with a:
                with b:
                    pass
        report = witness.report()
        assert len(report["sites"]) == 2
        assert len(report["edges"]) == 1
        assert report["cycles"] == []
        (edge,) = report["edges"]
        assert edge[2] == 1 and edge[0] != edge[1]


class TestCrossCheck:
    """Dynamic witness and static graph must agree on the live service."""

    @pytest.fixture(scope="class")
    def workload_witness(self, small_text):
        witness = LockWitness()
        witness.install()
        try:
            spec = WorkloadSpec(clients=3, requests_per_client=4,
                                systems=("D",), think_mean_seconds=0.0,
                                write_ratio=0.25)
            with QueryService(small_text, ("D",), max_workers=4) as svc:
                svc.run_workload(WorkloadGenerator(spec))
                svc.submit("D", 1)
        finally:
            witness.uninstall()
        return witness

    def test_workload_recorded_real_edges(self, workload_witness):
        # the admission gate is held around every query; the caches are
        # taken inside it — the witness must have seen that order live
        edges = workload_witness.edges()
        assert edges, "witness recorded no ordering edges at all"
        sites = {site for pair in edges for site in pair}
        assert any("service/service.py" in s for s in sites)

    def test_no_dynamic_cycles(self, workload_witness):
        assert workload_witness.cycles() == []

    def test_union_with_static_graph_is_acyclic(self, workload_witness):
        project = Project.load(default_src_root(), package="repro")
        verdict = cross_check(workload_witness, project)
        assert verdict["dynamic_cycles"] == []
        assert verdict["union_cycles"] == []

    def test_dynamic_sites_join_static_registry(self, workload_witness):
        project = Project.load(default_src_root(), package="repro")
        verdict = cross_check(workload_witness, project)
        # at least one dynamic edge must land entirely in lock-id space:
        # the creation-site keying joins the two graphs losslessly
        assert any(a.split(":")[0] in project.modules
                   and b.split(":")[0] in project.modules
                   for a, b in verdict["dynamic_edges"]), \
            verdict["dynamic_edges"]
