#!/usr/bin/env python
"""Function-exercise coverage with a soft gate against the recorded baseline.

Runs the test suite under a stdlib profile hook (no external coverage
dependency), counts every ``def`` in ``src/repro`` that executed at least
once, and compares the percentage against the baseline recorded in
``docs/COVERAGE.md``.  The gate is *soft*: the job fails only when
coverage drops more than ``--tolerance`` (default 2.0) percentage points
below the baseline, so incidental drift is visible without blocking and
real regressions fail CI.

    PYTHONPATH=src python tools/check_function_coverage.py
    python tools/check_function_coverage.py --baseline 85.3 --tolerance 2

The printed ``TOTAL functions ... exercised ... = ...%`` line is the same
format docs/COVERAGE.md records, so refreshing the baseline is a
copy-paste of this script's output.
"""

from __future__ import annotations

import argparse
import ast
import os
import re
import sys
import threading

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src", "repro")
BASELINE_DOC = os.path.join(REPO_ROOT, "docs", "COVERAGE.md")
BASELINE_PATTERN = re.compile(r"TOTAL functions (\d+) exercised (\d+)")


def recorded_baseline() -> float:
    """The baseline percentage recorded in docs/COVERAGE.md."""
    with open(BASELINE_DOC, "r", encoding="utf-8") as handle:
        matched = BASELINE_PATTERN.search(handle.read())
    if matched is None:
        raise SystemExit(f"no 'TOTAL functions' baseline in {BASELINE_DOC}")
    defined, exercised = int(matched.group(1)), int(matched.group(2))
    return 100.0 * exercised / defined


def defined_functions() -> set[tuple[str, str, int]]:
    defined: set[tuple[str, str, int]] = set()
    for root, _dirs, files in os.walk(SRC):
        for name in files:
            if not name.endswith(".py"):
                continue
            path = os.path.join(root, name)
            with open(path, "r", encoding="utf-8") as handle:
                tree = ast.parse(handle.read())
            for node in ast.walk(tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    defined.add((path, node.name, node.lineno))
    return defined


def run_suite_profiled() -> tuple[int, set[tuple[str, str, int]]]:
    """(pytest exit code, functions observed executing under src/repro)."""
    seen: set[tuple[str, str, int]] = set()

    def profiler(frame, event, arg):
        if event == "call":
            code = frame.f_code
            if code.co_filename.startswith(SRC):
                seen.add((code.co_filename, code.co_name, code.co_firstlineno))

    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    import pytest

    threading.setprofile(profiler)
    sys.setprofile(profiler)
    try:
        rc = pytest.main(["-q", "-p", "no:cacheprovider",
                          os.path.join(REPO_ROOT, "tests")])
    finally:
        sys.setprofile(None)
        threading.setprofile(None)
    return int(rc), seen


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="function-exercise coverage soft gate")
    parser.add_argument("--baseline", type=float, default=None,
                        help="baseline percentage (default: parsed from "
                             "docs/COVERAGE.md)")
    parser.add_argument("--tolerance", type=float, default=2.0,
                        help="allowed drop below baseline, in points "
                             "(default 2.0)")
    args = parser.parse_args(argv)

    baseline = args.baseline if args.baseline is not None else recorded_baseline()
    rc, seen = run_suite_profiled()
    if rc != 0:
        print(f"test suite failed (exit {rc}); coverage not evaluated",
              file=sys.stderr)
        return rc

    defined = defined_functions()
    hit = defined & seen
    percent = 100.0 * len(hit) / len(defined) if defined else 0.0
    print(f"TOTAL functions {len(defined)} exercised {len(hit)} "
          f"= {percent / 100:.1%}")
    floor = baseline - args.tolerance
    print(f"baseline {baseline:.1f}%, tolerance {args.tolerance:.1f} points "
          f"-> floor {floor:.1f}%")
    if percent < floor:
        missing = sorted(defined - seen)
        print("coverage gate FAILED; sample of unexercised functions:",
              file=sys.stderr)
        for path, name, line in missing[:15]:
            rel = os.path.relpath(path, REPO_ROOT)
            print(f"  {rel}:{line} {name}", file=sys.stderr)
        return 1
    print("coverage gate OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
