#!/usr/bin/env python3
"""Benchmark-report schema gate: every ``BENCH_*.json`` must be well-formed.

The committed benchmark reports at the repo root (and any freshly
generated ones in CI) all come out of :func:`benchmarks._emit.build_report`,
and downstream tooling — report diffing, the EXPERIMENTS.md tables —
assumes their common shape.  This gate pins that shape:

* top level: ``machine_info``, ``commit_info``, ``benchmarks``,
  ``version``, ``config``, plus optional ``acceptance``;
* every benchmark record: ``group``, ``name``, ``fullname``, ``params``,
  ``stats``, ``extra_info``;
* every record's stats: ``min``/``max``/``mean``/``stddev`` (numbers)
  and ``rounds``/``iterations`` (positive integers);
* when ``acceptance`` is present it must carry an ``ok`` bool (plus an
  optional ``criterion`` string) — and ``ok`` must be true: a report
  whose own acceptance failed has no business being committed.

Usage::

    python tools/check_bench_reports.py [paths...]

With no arguments, checks every ``BENCH_*.json`` at the repo root.
Exit status 1 on any violation, listing all of them.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

TOP_LEVEL_REQUIRED = ("machine_info", "commit_info", "benchmarks",
                      "version", "config")
RECORD_REQUIRED = ("group", "name", "fullname", "params", "stats",
                   "extra_info")
STATS_NUMBERS = ("min", "max", "mean", "stddev")
STATS_COUNTS = ("rounds", "iterations")


def check_report(path: Path) -> list[str]:
    """All schema violations in one report file (empty = clean)."""
    label = path.name
    try:
        report = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [f"{label}: unreadable or invalid JSON ({exc})"]
    if not isinstance(report, dict):
        return [f"{label}: top level is {type(report).__name__}, expected object"]

    problems = []
    for key in TOP_LEVEL_REQUIRED:
        if key not in report:
            problems.append(f"{label}: missing top-level key {key!r}")
    records = report.get("benchmarks")
    if not isinstance(records, list) or not records:
        problems.append(f"{label}: 'benchmarks' must be a non-empty list")
        records = []
    for i, record in enumerate(records):
        where = f"{label}: benchmarks[{i}]"
        if not isinstance(record, dict):
            problems.append(f"{where} is {type(record).__name__}, "
                            "expected object")
            continue
        for key in RECORD_REQUIRED:
            if key not in record:
                problems.append(f"{where} missing key {key!r}")
        stats = record.get("stats")
        if not isinstance(stats, dict):
            continue
        for key in STATS_NUMBERS:
            value = stats.get(key)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"{where} stats[{key!r}] must be a number, "
                                f"got {value!r}")
        for key in STATS_COUNTS:
            value = stats.get(key)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value <= 0:
                problems.append(f"{where} stats[{key!r}] must be a positive "
                                f"integer, got {value!r}")
    if "acceptance" in report:
        acceptance = report["acceptance"]
        if not isinstance(acceptance, dict):
            problems.append(f"{label}: 'acceptance' must be an object")
        else:
            if "criterion" in acceptance \
                    and not isinstance(acceptance["criterion"], str):
                problems.append(f"{label}: acceptance.criterion must be a "
                                "string")
            ok = acceptance.get("ok")
            if not isinstance(ok, bool):
                problems.append(f"{label}: acceptance.ok must be a bool")
            elif not ok:
                problems.append(
                    f"{label}: acceptance.ok is false — a failing report "
                    "must not be committed "
                    f"(failures: {acceptance.get('failures')})")
    return problems


def main(argv: list[str] | None = None) -> int:
    paths = [Path(arg) for arg in (argv if argv is not None else sys.argv[1:])]
    if not paths:
        paths = sorted(REPO_ROOT.glob("BENCH_*.json"))
    if not paths:
        print("no BENCH_*.json reports found", file=sys.stderr)
        return 1

    problems = []
    for path in paths:
        found = check_report(path)
        problems.extend(found)
        status = "FAIL" if found else "ok"
        print(f"  {path.name}: {status}")
    if problems:
        print(f"\n{len(problems)} schema violation(s):", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print(f"all {len(paths)} report(s) match the shared schema")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
