#!/usr/bin/env python3
"""Public-API surface gate: snapshot what the library exports, fail on drift.

Walks the exported surface of ``repro``, ``repro.db``,
``repro.server``, and ``repro.analyze`` (every
``__all__`` name: functions with their signatures, classes with their
public methods and properties, constants with their types) and compares
it against the reviewed snapshot in ``docs/PUBLIC_API.txt``.

* ``python tools/check_public_api.py``            — check (CI: exit 1 on drift)
* ``python tools/check_public_api.py --update``   — rewrite the snapshot

The point is not to forbid change but to make it *reviewed*: an API break
must ship with a refreshed snapshot in the same PR, so it shows up in the
diff next to the code that caused it.
"""

from __future__ import annotations

import argparse
import difflib
import importlib
import inspect
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

MODULES = ("repro", "repro.db", "repro.server", "repro.analyze")
SNAPSHOT = Path(__file__).resolve().parent.parent / "docs" / "PUBLIC_API.txt"

#: Dunder methods that are part of a class's usable surface.
_DUNDER_SURFACE = frozenset((
    "__init__", "__call__", "__iter__", "__next__", "__enter__", "__exit__",
    "__len__",
))


def _signature(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def _class_lines(qualified: str, cls: type) -> list[str]:
    bases = ", ".join(base.__name__ for base in cls.__bases__
                      if base is not object)
    lines = [f"class {qualified}" + (f"({bases})" if bases else "")]
    for name, attribute in sorted(vars(cls).items()):
        if name.startswith("_") and name not in _DUNDER_SURFACE:
            continue
        member = f"{qualified}.{name}"
        if isinstance(attribute, property):
            lines.append(f"  property {member}")
        elif isinstance(attribute, (staticmethod, classmethod)):
            lines.append(f"  def {member}{_signature(attribute.__func__)}")
        elif inspect.isfunction(attribute):
            lines.append(f"  def {member}{_signature(attribute)}")
    return lines


def surface() -> list[str]:
    """The exported surface, one sorted deterministic line per feature."""
    lines: list[str] = []
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        exported = getattr(module, "__all__", None)
        if exported is None:
            raise SystemExit(f"{module_name} has no __all__; nothing to gate")
        for name in sorted(exported):
            obj = getattr(module, name)
            qualified = f"{module_name}.{name}"
            if inspect.isclass(obj):
                lines.extend(_class_lines(qualified, obj))
            elif inspect.isfunction(obj):
                lines.append(f"def {qualified}{_signature(obj)}")
            else:
                lines.append(f"const {qualified}: {type(obj).__name__}")
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="rewrite the snapshot instead of checking")
    args = parser.parse_args(argv)

    current = surface()
    if args.update:
        SNAPSHOT.write_text("\n".join(current) + "\n", encoding="utf-8")
        print(f"wrote {SNAPSHOT} ({len(current)} lines)")
        return 0

    if not SNAPSHOT.exists():
        print(f"missing snapshot {SNAPSHOT}; run with --update to create it",
              file=sys.stderr)
        return 1
    recorded = SNAPSHOT.read_text(encoding="utf-8").splitlines()
    if recorded == current:
        print(f"public API surface matches {SNAPSHOT.name} "
              f"({len(current)} lines)")
        return 0
    print("public API surface drifted from the reviewed snapshot:\n",
          file=sys.stderr)
    for line in difflib.unified_diff(recorded, current,
                                     fromfile=str(SNAPSHOT),
                                     tofile="current exports", lineterm=""):
        print(line, file=sys.stderr)
    print("\nIf the change is intentional, refresh the snapshot with:\n"
          "  python tools/check_public_api.py --update\n"
          "and commit it in the same PR.", file=sys.stderr)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
